#include "query/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "common/string_util.h"

namespace kaskade::query {

namespace {

enum class TokKind {
  kIdent,
  kInt,
  kFloat,
  kString,
  kPunct,  // ( ) [ ] , . : * - > < = ! and two-char ops
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        out.push_back(Token{TokKind::kEof, "", 0, 0});
        return out;
      }
      char c = text_[pos_];
      // Identifiers; a digit run immediately followed by a letter or '_'
      // also lexes as an identifier (edge types like 2_HOP_JOB_TO_JOB).
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
          (std::isdigit(static_cast<unsigned char>(c)) && StartsIdent())) {
        size_t end = pos_;
        while (end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '_')) {
          ++end;
        }
        out.push_back(Token{TokKind::kIdent, text_.substr(pos_, end - pos_), 0, 0});
        pos_ = end;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t end = pos_;
        while (end < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[end]))) {
          ++end;
        }
        bool is_float = false;
        // A '.' starts a fraction only if followed by a digit ("0..8" must
        // lex as INT RANGE INT).
        if (end + 1 < text_.size() && text_[end] == '.' &&
            std::isdigit(static_cast<unsigned char>(text_[end + 1]))) {
          is_float = true;
          ++end;
          while (end < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[end]))) {
            ++end;
          }
        }
        Token tok;
        std::string digits = text_.substr(pos_, end - pos_);
        if (is_float) {
          tok.kind = TokKind::kFloat;
          tok.float_value = std::stod(digits);
        } else {
          tok.kind = TokKind::kInt;
          tok.int_value = std::stoll(digits);
        }
        tok.text = digits;
        out.push_back(std::move(tok));
        pos_ = end;
        continue;
      }
      if (c == '\'') {
        size_t end = text_.find('\'', pos_ + 1);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated string literal");
        }
        out.push_back(
            Token{TokKind::kString, text_.substr(pos_ + 1, end - pos_ - 1), 0, 0});
        pos_ = end + 1;
        continue;
      }
      // Two-char punctuation.
      if (pos_ + 1 < text_.size()) {
        std::string two = text_.substr(pos_, 2);
        if (two == ".." || two == "->" || two == "<>" || two == "<=" ||
            two == ">=" || two == "!=") {
          out.push_back(Token{TokKind::kPunct, two, 0, 0});
          pos_ += 2;
          continue;
        }
      }
      static const std::string kSingles = "()[],.:*-><=;";
      if (kSingles.find(c) != std::string::npos) {
        out.push_back(Token{TokKind::kPunct, std::string(1, c), 0, 0});
        ++pos_;
        continue;
      }
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' in query");
    }
  }

 private:
  /// True when the digit run starting at pos_ runs into a letter or '_'
  /// (then the whole run is an identifier).
  bool StartsIdent() const {
    size_t end = pos_;
    while (end < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[end]))) {
      ++end;
    }
    return end < text_.size() &&
           (std::isalpha(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '_');
  }

  const std::string& text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    KASKADE_ASSIGN_OR_RETURN(Query q, ParseQueryInner());
    // Tolerate a trailing semicolon.
    if (IsPunct(";")) ++pos_;
    if (Peek().kind != TokKind::kEof) {
      return Status::InvalidArgument("trailing tokens after query: '" +
                                     Peek().text + "'");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool IsKeyword(const char* kw, size_t ahead = 0) const {
    return Peek(ahead).kind == TokKind::kIdent &&
           EqualsIgnoreCase(Peek(ahead).text, kw);
  }

  bool IsPunct(const char* p, size_t ahead = 0) const {
    return Peek(ahead).kind == TokKind::kPunct && Peek(ahead).text == p;
  }

  Status ExpectPunct(const char* p) {
    if (!IsPunct(p)) {
      return Status::InvalidArgument(std::string("expected '") + p +
                                     "' but found '" + Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     " but found '" + Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected identifier but found '" +
                                     Peek().text + "'");
    }
    std::string name = Peek().text;
    ++pos_;
    return name;
  }

  Result<Query> ParseQueryInner() {
    if (IsKeyword("SELECT")) return ParseSelect();
    if (IsKeyword("MATCH")) return ParseMatch();
    return Status::InvalidArgument("query must start with SELECT or MATCH");
  }

  Result<Query> ParseSelect() {
    KASKADE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectQuery select;
    while (true) {
      KASKADE_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      select.items.push_back(std::move(item));
      if (IsPunct(",")) {
        ++pos_;
        continue;
      }
      break;
    }
    KASKADE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    KASKADE_RETURN_IF_ERROR(ExpectPunct("("));
    KASKADE_ASSIGN_OR_RETURN(Query sub, ParseQueryInner());
    select.from = std::make_unique<Query>(std::move(sub));
    KASKADE_RETURN_IF_ERROR(ExpectPunct(")"));
    if (IsKeyword("WHERE")) {
      ++pos_;
      KASKADE_ASSIGN_OR_RETURN(select.where, ParseConditions());
    }
    if (IsKeyword("GROUP")) {
      ++pos_;
      KASKADE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        KASKADE_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        select.group_by.push_back(std::move(ref));
        if (IsPunct(",")) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    Query q;
    q.node = std::move(select);
    return q;
  }

  std::optional<AggFunc> AggKeyword() const {
    if (Peek().kind != TokKind::kIdent) return std::nullopt;
    const std::string& t = Peek().text;
    if (EqualsIgnoreCase(t, "SUM")) return AggFunc::kSum;
    if (EqualsIgnoreCase(t, "AVG")) return AggFunc::kAvg;
    if (EqualsIgnoreCase(t, "COUNT")) return AggFunc::kCount;
    if (EqualsIgnoreCase(t, "MIN")) return AggFunc::kMin;
    if (EqualsIgnoreCase(t, "MAX")) return AggFunc::kMax;
    return std::nullopt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    std::optional<AggFunc> agg = AggKeyword();
    if (agg.has_value() && IsPunct("(", 1)) {
      item.agg = *agg;
      pos_ += 2;
      if (IsPunct("*")) {
        item.star = true;
        ++pos_;
      } else {
        KASKADE_ASSIGN_OR_RETURN(item.ref, ParseColumnRef());
      }
      KASKADE_RETURN_IF_ERROR(ExpectPunct(")"));
    } else {
      KASKADE_ASSIGN_OR_RETURN(item.ref, ParseColumnRef());
    }
    if (IsKeyword("AS")) {
      ++pos_;
      KASKADE_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
    }
    return item;
  }

  Result<ColumnRef> ParseColumnRef() {
    ColumnRef ref;
    KASKADE_ASSIGN_OR_RETURN(ref.base, ExpectIdent());
    if (IsPunct(".")) {
      ++pos_;
      KASKADE_ASSIGN_OR_RETURN(ref.property, ExpectIdent());
    }
    return ref;
  }

  Result<std::vector<Condition>> ParseConditions() {
    std::vector<Condition> out;
    while (true) {
      Condition cond;
      KASKADE_ASSIGN_OR_RETURN(cond.lhs, ParseColumnRef());
      if (IsPunct("=")) {
        cond.op = CompareOp::kEq;
      } else if (IsPunct("<>") || IsPunct("!=")) {
        cond.op = CompareOp::kNe;
      } else if (IsPunct("<=")) {
        cond.op = CompareOp::kLe;
      } else if (IsPunct(">=")) {
        cond.op = CompareOp::kGe;
      } else if (IsPunct("<")) {
        cond.op = CompareOp::kLt;
      } else if (IsPunct(">")) {
        cond.op = CompareOp::kGt;
      } else {
        return Status::InvalidArgument("expected comparison operator");
      }
      ++pos_;
      const Token& lit = Peek();
      if (lit.kind == TokKind::kInt) {
        cond.rhs = graph::PropertyValue(lit.int_value);
      } else if (lit.kind == TokKind::kFloat) {
        cond.rhs = graph::PropertyValue(lit.float_value);
      } else if (lit.kind == TokKind::kString) {
        cond.rhs = graph::PropertyValue(lit.text);
      } else {
        return Status::InvalidArgument("expected literal in condition");
      }
      ++pos_;
      out.push_back(std::move(cond));
      if (IsKeyword("AND")) {
        ++pos_;
        continue;
      }
      break;
    }
    return out;
  }

  // -- MATCH ------------------------------------------------------------

  Status AddNode(MatchQuery* m, const NodePattern& node) {
    for (NodePattern& existing : m->nodes) {
      if (existing.name == node.name) {
        if (existing.type.empty()) existing.type = node.type;
        if (!node.type.empty() && !existing.type.empty() &&
            node.type != existing.type) {
          return Status::InvalidArgument("node '" + node.name +
                                         "' declared with conflicting types");
        }
        return Status::OK();
      }
    }
    m->nodes.push_back(node);
    return Status::OK();
  }

  Result<NodePattern> ParseNode() {
    KASKADE_RETURN_IF_ERROR(ExpectPunct("("));
    NodePattern node;
    KASKADE_ASSIGN_OR_RETURN(node.name, ExpectIdent());
    if (IsPunct(":")) {
      ++pos_;
      KASKADE_ASSIGN_OR_RETURN(node.type, ExpectIdent());
    }
    KASKADE_RETURN_IF_ERROR(ExpectPunct(")"));
    return node;
  }

  /// Parses the bracket part of an edge: `[var][:TYPE][*L..U]`.
  Status ParseEdgeBody(EdgePattern* edge) {
    KASKADE_RETURN_IF_ERROR(ExpectPunct("["));
    if (Peek().kind == TokKind::kIdent) {
      edge->var = Peek().text;
      ++pos_;
    }
    if (IsPunct(":")) {
      ++pos_;
      KASKADE_ASSIGN_OR_RETURN(edge->type, ExpectIdent());
      // Accept '-' continuations inside type names (paper's
      // "2_HOP-JOB_TO_JOB" spelling).
      while (IsPunct("-") && Peek(1).kind == TokKind::kIdent) {
        edge->type += "_";
        edge->type += Peek(1).text;
        pos_ += 2;
      }
    }
    if (IsPunct("*")) {
      ++pos_;
      edge->variable_length = true;
      edge->min_hops = 1;
      edge->max_hops = 1;
      if (Peek().kind == TokKind::kInt) {
        edge->min_hops = static_cast<int>(Peek().int_value);
        edge->max_hops = edge->min_hops;
        ++pos_;
        if (IsPunct("..")) {
          ++pos_;
          if (Peek().kind != TokKind::kInt) {
            return Status::InvalidArgument("expected upper bound after '..'");
          }
          edge->max_hops = static_cast<int>(Peek().int_value);
          ++pos_;
        }
      } else {
        return Status::InvalidArgument(
            "variable-length edge requires explicit bounds *L..U");
      }
      if (edge->min_hops < 0 || edge->max_hops < edge->min_hops) {
        return Status::InvalidArgument("invalid variable-length bounds");
      }
    }
    KASKADE_RETURN_IF_ERROR(ExpectPunct("]"));
    return Status::OK();
  }

  Result<Query> ParseMatch() {
    KASKADE_RETURN_IF_ERROR(ExpectKeyword("MATCH"));
    MatchQuery m;
    // Pattern chains: (a)-[..]->(b)-[..]->(c), separated by commas or
    // juxtaposition.
    while (true) {
      KASKADE_ASSIGN_OR_RETURN(NodePattern left, ParseNode());
      KASKADE_RETURN_IF_ERROR(AddNode(&m, left));
      while (IsPunct("-")) {
        ++pos_;
        EdgePattern edge;
        edge.from = left.name;
        KASKADE_RETURN_IF_ERROR(ParseEdgeBody(&edge));
        KASKADE_RETURN_IF_ERROR(ExpectPunct("->"));
        KASKADE_ASSIGN_OR_RETURN(NodePattern right, ParseNode());
        KASKADE_RETURN_IF_ERROR(AddNode(&m, right));
        edge.to = right.name;
        m.edges.push_back(std::move(edge));
        left = right;
      }
      if (IsPunct(",")) {
        ++pos_;
        continue;
      }
      if (IsPunct("(")) continue;  // juxtaposed chain (Listing 1 style)
      break;
    }
    if (IsKeyword("WHERE")) {
      ++pos_;
      KASKADE_ASSIGN_OR_RETURN(m.where, ParseConditions());
    }
    KASKADE_RETURN_IF_ERROR(ExpectKeyword("RETURN"));
    while (true) {
      ReturnItem item;
      KASKADE_ASSIGN_OR_RETURN(item.variable, ExpectIdent());
      if (IsKeyword("AS")) {
        ++pos_;
        KASKADE_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      }
      m.return_items.push_back(std::move(item));
      if (IsPunct(",")) {
        ++pos_;
        continue;
      }
      break;
    }
    Query q;
    q.node = std::move(m);
    return q;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQueryText(const std::string& text) {
  Lexer lexer(text);
  KASKADE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace kaskade::query
