/// \file orchestrator.h
/// \brief `WorkloadRunner`: drives a declarative `WorkloadSpec` against
/// one `Engine` — the serving-scale mixed-traffic harness.
///
/// Execution model (genny-style): phases run strictly in order. Within a
/// phase, `threads` client threads are spawned, each parks on a start
/// barrier, and the phase clock starts only when every thread has
/// arrived — thread N never gets a head start because thread 0 was still
/// being constructed. Each thread owns a deterministic `OpGenerator`
/// stream (seeded from the spec seed, the phase index, and the thread
/// index) and issues ops against the engine until the phase's stopping
/// rule fires.
///
/// Pacing: a phase with `rate_ops_per_sec > 0` is **open loop** — each
/// thread computes its op's *intended* start from the phase start and
/// the per-thread arrival interval, sleeps until that slot, then issues.
/// When the engine stalls, subsequent slots fall due immediately and the
/// backlog drains as fast as the engine allows, with every queued op's
/// wait charged to its corrected latency (see `workload/metrics.h` on
/// coordinated omission). `rate_ops_per_sec == 0` is closed loop.
///
/// Safety checks on the measured path are deliberately cheap: each
/// `Execute` result is verified against the generated query's expected
/// column count (a torn catalog or snapshot would surface as a
/// wrong-shape table), and mutation ops only ever remove edges the
/// issuing thread itself inserted, so concurrent removals cannot race.
///
/// After any phase that issued out-of-band `MutateBaseGraph` ops the
/// runner calls `RefreshViews()` (timed separately in the phase result)
/// so the next phase starts from exact views — mirroring how an
/// operator runs out-of-band surgery.

#ifndef KASKADE_WORKLOAD_ORCHESTRATOR_H_
#define KASKADE_WORKLOAD_ORCHESTRATOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "workload/generator.h"
#include "workload/metrics.h"
#include "workload/spec.h"

namespace kaskade::workload {

/// \brief Outcome of one phase.
struct PhaseResult {
  std::string name;
  /// Barrier release to last thread finished.
  double wall_seconds = 0;
  /// `RefreshViews` wall clock when the phase ran `mutate_base` ops
  /// (0 otherwise).
  double refresh_seconds = 0;
  PhaseMetrics metrics;
  /// Engine counters straddling the phase; `after - before` is the
  /// phase's engine-side story (plan-cache hits, snapshot patches,
  /// builds, auto-advise rounds...).
  core::EngineTelemetry before;
  core::EngineTelemetry after;
  /// XOR of the per-thread op-stream digests: equal across two runs of
  /// the same spec+seed iff both runs generated identical traffic.
  uint64_t op_digest = 0;
  /// First op failure observed (OK when `metrics` shows zero failures).
  Status first_error;

  double throughput_ops_per_sec() const {
    return wall_seconds <= 0 ? 0
                             : double(metrics.total_attempted()) / wall_seconds;
  }
};

/// \brief Outcome of one full workload run.
struct RunResult {
  std::string workload_name;
  uint64_t seed = 0;
  std::string dataset;
  std::vector<PhaseResult> phases;

  uint64_t total_attempted() const {
    uint64_t total = 0;
    for (const PhaseResult& p : phases) total += p.metrics.total_attempted();
    return total;
  }
  uint64_t total_failed() const {
    uint64_t total = 0;
    for (const PhaseResult& p : phases) total += p.metrics.total_failed();
    return total;
  }
  uint64_t total_shed() const {
    uint64_t total = 0;
    for (const PhaseResult& p : phases) total += p.metrics.total_shed();
    return total;
  }
  uint64_t total_timed_out() const {
    uint64_t total = 0;
    for (const PhaseResult& p : phases) total += p.metrics.total_timed_out();
    return total;
  }
};

/// \brief Harness configuration.
struct RunnerOptions {
  /// Verify each `Execute`/`ExecuteBatch` result table against the
  /// generated query's expected column count; a mismatch counts as an op
  /// failure ("torn read"). Costs one comparison per op.
  bool check_result_shape = true;
};

/// \brief Drives `WorkloadSpec`s against one engine. The runner itself
/// holds no traffic state between runs; it may be reused.
class WorkloadRunner {
 public:
  /// `engine` must outlive the runner. `profile` is the dataset template
  /// pool every generated op draws from (see
  /// `GeneratorProfile::ForDataset`).
  WorkloadRunner(core::Engine* engine, GeneratorProfile profile,
                 RunnerOptions options = {});

  /// Runs every phase of `spec` in order. Fails fast on an invalid spec
  /// or a spec/profile dataset mismatch; individual op failures do NOT
  /// abort the run — they are counted per op type and surfaced via
  /// `PhaseResult::first_error`.
  Result<RunResult> Run(const WorkloadSpec& spec);

 private:
  /// Everything one client thread brings back from a phase.
  struct ThreadOutcome {
    PhaseMetrics metrics;
    uint64_t digest = 0;
    Status first_error;
  };

  /// Start barrier: threads park in `Await` until the orchestrator has
  /// seen all of them arrive and published the phase-clock origin.
  struct StartGate {
    std::mutex mu;
    std::condition_variable cv;
    size_t arrived = 0;
    bool open = false;
    std::chrono::steady_clock::time_point start;

    /// Called by each client thread; blocks until release, then returns
    /// the shared phase start time.
    std::chrono::steady_clock::time_point Await();
    /// Called by the orchestrator: blocks until `expected` threads
    /// arrived, stamps the start time, releases everyone.
    std::chrono::steady_clock::time_point Release(size_t expected);
  };

  /// Body of one client thread.
  void RunThread(const PhaseSpec& phase, size_t phase_index,
                 size_t thread_index, uint64_t workload_seed, StartGate* gate,
                 ThreadOutcome* out);

  /// Issues one op; returns its status. `call` carries the op's
  /// deadline (anchored at its intended start; see
  /// `PhaseSpec::deadline_ms`); `owned_edges` is the thread's private
  /// list of edge ids it inserted (removal pool).
  Status IssueOp(const Op& op, const core::CallOptions& call,
                 std::vector<graph::EdgeId>* owned_edges);

  core::Engine* engine_;
  GeneratorProfile profile_;
  RunnerOptions options_;
};

}  // namespace kaskade::workload

#endif  // KASKADE_WORKLOAD_ORCHESTRATOR_H_
