#include "workload/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace kaskade::workload {

size_t LatencyHistogram::BucketFor(uint64_t v) {
  // Values below kSubBuckets are exact: bucket index == value.
  if (v < kSubBuckets) return size_t(v);
  int h = std::bit_width(v) - 1;  // v in [2^h, 2^(h+1))
  if (h >= kMaxExponent) {
    return kNumBuckets - 1;  // saturate
  }
  // 32 linear sub-buckets across the octave: (v >> (h - kSubBits)) is in
  // [kSubBuckets, 2*kSubBuckets).
  uint64_t sub = (v >> (h - kSubBits)) - kSubBuckets;
  return kSubBuckets + size_t(h - kSubBits) * kSubBuckets + size_t(sub);
}

uint64_t LatencyHistogram::BucketUpper(size_t index) {
  if (index < kSubBuckets) return uint64_t(index);
  size_t octave = (index - kSubBuckets) / kSubBuckets;  // == h - kSubBits
  uint64_t sub = (index - kSubBuckets) % kSubBuckets;
  uint64_t lower = (kSubBuckets + sub) << octave;
  return lower + ((uint64_t(1) << octave) - 1);
}

void LatencyHistogram::Record(double us) {
  // Normalize before the integer cast: NaN and anything at or past
  // 2^63 would make `uint64_t(us)` undefined (UBSan trips on both).
  // NaN clocks read as the 1us floor; huge values saturate below the
  // clamp ceiling so BucketFor's top-bucket path handles them, and the
  // exact-extreme fields keep the raw (finite) value.
  if (std::isnan(us)) us = 1;
  constexpr double kCeiling = double(uint64_t(1) << kMaxExponent);
  uint64_t v = us <= 1 ? 1
               : us >= kCeiling
                   ? (uint64_t(1) << kMaxExponent)
                   : uint64_t(us);
  ++counts_[BucketFor(v)];
  if (count_ == 0) {
    min_us_ = us;
    max_us_ = us;
  } else {
    min_us_ = std::min(min_us_, us);
    max_us_ = std::max(max_us_, us);
  }
  ++count_;
  sum_us_ += us;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_us_ = other.min_us_;
    max_us_ = other.max_us_;
  } else {
    min_us_ = std::min(min_us_, other.min_us_);
    max_us_ = std::max(max_us_, other.max_us_);
  }
  count_ += other.count_;
  sum_us_ += other.sum_us_;
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  // The extremes are tracked exactly — answering q = 0 from the first
  // occupied bucket's *upper* edge would overshoot the minimum, and
  // answering q = 1 from the top bucket's edge would *undershoot* a
  // maximum that saturated past the clamp ceiling.
  if (q <= 0) return min_us_;
  if (q >= 1) return max_us_;
  uint64_t rank = uint64_t(std::ceil(q * double(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;  // float round-up past the top
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return std::min(double(BucketUpper(i)), max_us_);
    }
  }
  return max_us_;  // unreachable when counts are consistent
}

}  // namespace kaskade::workload
