/// \file spec.h
/// \brief Declarative serving-workload specifications.
///
/// A `WorkloadSpec` describes a multi-phase mixed-traffic run against
/// one `Engine` the way genny describes a workload against a mongo
/// cluster: ordered **phases**, each with a client thread count, a
/// target open-loop arrival rate, a stopping rule (per-thread op count
/// or wall-clock duration), and a weighted op mix over the engine's
/// public surface (`Execute` / `ExecuteBatch` / `ApplyDelta` /
/// `MutateBaseGraph` / `AutoAdvise`). Specs are plain text, so a CI job
/// or an operator can describe a new traffic shape without recompiling:
///
/// ```text
/// # comments run to end of line
/// workload serving_mixed
/// seed 42
/// dataset social            # template pool: social | prov
/// phase warmup
///   threads 4
///   rate 0                  # ops/sec across all threads; 0 = closed loop
///   ops_per_thread 2000     # XOR duration_ms
///   mix execute=90 execute_batch=10
/// end
/// phase churn
///   threads 4
///   rate 5000
///   duration_ms 1500
///   mix execute=70 apply_delta=20 mutate_base=5 auto_advise=5
///   batch_size 8
///   delta_edges 16
/// end
/// ```
///
/// `ParseWorkloadSpec` rejects malformed input with a line-numbered
/// error; `WorkloadSpec::ToText()` renders the canonical form, and
/// parse(render(spec)) == spec, so specs round-trip losslessly.
/// Reproducibility contract: a spec whose phases all use
/// `ops_per_thread` generates a byte-identical op sequence for a given
/// `seed` (see `workload/generator.h`); `duration_ms` phases trade that
/// for wall-clock control.

#ifndef KASKADE_WORKLOAD_SPEC_H_
#define KASKADE_WORKLOAD_SPEC_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace kaskade::workload {

/// \brief The op types a phase mixes. Values index `PhaseSpec::mix`.
enum class OpKind {
  kExecute = 0,      ///< One `Engine::Execute` of a generated query.
  kExecuteBatch,     ///< One `Engine::ExecuteBatch` of `batch_size` queries.
  kApplyDelta,       ///< One `Engine::ApplyDelta` mutation batch.
  kMutateBase,       ///< One out-of-band `Engine::MutateBaseGraph` append.
  kAutoAdvise,       ///< One explicit `Engine::AutoAdvise` round.
};

inline constexpr size_t kNumOpKinds = 5;

/// Stable spec-facing name ("execute", "execute_batch", "apply_delta",
/// "mutate_base", "auto_advise").
const char* OpKindName(OpKind kind);

/// \brief One phase of a workload: a thread count, an arrival process,
/// a stopping rule, and an op mix.
struct PhaseSpec {
  std::string name;
  /// Client threads; all enter the phase together (barrier).
  size_t threads = 1;
  /// Target open-loop arrival rate in ops/sec across all threads, paced
  /// per thread at `rate / threads`. 0 = closed loop (each thread issues
  /// its next op as soon as the previous completes).
  double rate_ops_per_sec = 0;
  /// Stopping rule: exactly one of these is non-zero.
  uint64_t ops_per_thread = 0;
  uint64_t duration_ms = 0;
  /// Non-negative weights per `OpKind`; at least one must be positive.
  /// Ops are drawn per-thread from the normalized distribution.
  std::array<double, kNumOpKinds> mix{};
  /// Queries per `kExecuteBatch` op.
  size_t batch_size = 8;
  /// Edge mutations per `kApplyDelta` op (~3/4 inserts, ~1/4 removals of
  /// edges the issuing thread previously inserted).
  size_t delta_edges = 16;
  /// Per-op query deadline in milliseconds, anchored at the op's
  /// *intended* (scheduled) start — an op that begins late because the
  /// engine is saturated has already spent part of its budget, exactly
  /// as an SLA-bound client would experience it. Applies to `kExecute`
  /// and `kExecuteBatch`; expiries are counted as `timed_out`, not
  /// `failed`. 0 (default) = no deadline.
  uint64_t deadline_ms = 0;

  double weight(OpKind kind) const { return mix[size_t(kind)]; }
  bool operator==(const PhaseSpec&) const = default;
};

/// \brief A full declarative workload: named, seeded, over one dataset's
/// template pool, as an ordered phase list.
struct WorkloadSpec {
  std::string name = "workload";
  /// Master seed; thread t of phase p derives its private RNG stream
  /// from (seed, p, t), so runs are reproducible at any thread count.
  uint64_t seed = 1;
  /// Template pool selector: "social" or "prov".
  std::string dataset = "social";
  std::vector<PhaseSpec> phases;

  /// Canonical text form; `ParseWorkloadSpec(ToText())` reproduces the
  /// spec exactly.
  std::string ToText() const;

  bool operator==(const WorkloadSpec&) const = default;
};

/// Parses the text form. Errors carry the offending line number and are
/// exhaustive about what the parser expected; a returned spec always
/// passes `ValidateWorkloadSpec`.
Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text);

/// Structural validation shared by the parser and by callers that build
/// specs programmatically: at least one phase; per phase non-empty name,
/// threads >= 1, finite non-negative rate, exactly one stopping rule,
/// non-negative weights with a positive sum, batch_size/delta_edges >= 1
/// where their op has weight.
Status ValidateWorkloadSpec(const WorkloadSpec& spec);

}  // namespace kaskade::workload

#endif  // KASKADE_WORKLOAD_SPEC_H_
