/// \file metrics.h
/// \brief Latency histograms and per-phase op metrics for the serving
/// workload harness.
///
/// `LatencyHistogram` is a fixed-bucket, log-scale (HDR-style) counter
/// array over microsecond values: 32 sub-buckets per power of two, so
/// every recorded value lands in a bucket whose width is at most ~3.2%
/// of its magnitude — percentile queries (p50/p90/p99/p999) are off by
/// at most that relative error, with no per-record allocation and O(1)
/// `Record`. Worker threads each own private histograms and the
/// orchestrator merges them at phase end, so the metrics layer adds no
/// cross-thread contention to the measured path.
///
/// Coordinated-omission discipline: the harness records *two* latencies
/// per op. `latency` is measured from the op's **intended** start (the
/// open-loop schedule slot computed from the phase arrival rate) to its
/// completion — when the engine stalls, every queued-behind op's wait
/// counts against it, the correction Gil Tene's HdrHistogram writeups
/// argue for. `service` is measured from the actual issue time, i.e.
/// what the engine did once the op got through. Under a closed-loop
/// phase (rate 0) the two coincide by construction.

#ifndef KASKADE_WORKLOAD_METRICS_H_
#define KASKADE_WORKLOAD_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "workload/spec.h"

namespace kaskade::workload {

/// \brief Fixed-bucket log-scale latency histogram (microseconds).
class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
  static constexpr int kSubBits = 5;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBits;
  /// Values are clamped to [1, 2^kMaxExponent) microseconds (~73000s).
  static constexpr int kMaxExponent = 46;
  static constexpr size_t kNumBuckets =
      kSubBuckets + size_t(kMaxExponent - kSubBits) * kSubBuckets;

  /// Records one latency (values < 1us and NaN count as 1us; values
  /// past the clamp saturate into the top bucket without overflowing
  /// the integer cast). Not thread-safe: one recorder per thread, merge
  /// at the end.
  void Record(double us);

  /// Adds every count of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean_us() const { return count_ == 0 ? 0 : sum_us_ / double(count_); }
  /// Exact extremes (not bucketized).
  double min_us() const { return count_ == 0 ? 0 : min_us_; }
  double max_us() const { return count_ == 0 ? 0 : max_us_; }

  /// Value at quantile `q` in [0, 1]: the upper edge of the bucket
  /// holding the ceil(q * count)-th recorded value, clamped to the exact
  /// recorded maximum — an upper bound within ~3.2% of the true
  /// quantile. The extremes are exact: q <= 0 returns `min_us()` and
  /// q = 1 is clamped to `max_us()`. Returns 0 on an empty histogram.
  double Percentile(double q) const;

 private:
  /// Bucket index of microsecond value `v` (>= 1).
  static size_t BucketFor(uint64_t v);
  /// Largest value (inclusive) mapping to bucket `index`.
  static uint64_t BucketUpper(size_t index);

  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  double sum_us_ = 0;
  double min_us_ = 0;
  double max_us_ = 0;
};

/// \brief Everything measured for one op type within one phase.
struct OpMetrics {
  /// Coordinated-omission-corrected latency: completion minus the op's
  /// intended (scheduled) start.
  LatencyHistogram latency;
  /// Service time: completion minus actual issue.
  LatencyHistogram service;
  uint64_t attempted = 0;
  /// Genuine errors only — shed and timed-out ops are the overload
  /// behaving as designed and are counted separately below.
  uint64_t failed = 0;
  /// Ops the admission gate rejected with `kUnavailable`.
  uint64_t shed = 0;
  /// Ops that expired with `kDeadlineExceeded` under the phase's
  /// `deadline_ms` (for a batch op: batches with >= 1 expired member).
  uint64_t timed_out = 0;

  void Merge(const OpMetrics& other) {
    latency.Merge(other.latency);
    service.Merge(other.service);
    attempted += other.attempted;
    failed += other.failed;
    shed += other.shed;
    timed_out += other.timed_out;
  }
};

/// \brief Per-phase metrics: one `OpMetrics` per op kind.
struct PhaseMetrics {
  std::array<OpMetrics, kNumOpKinds> ops{};

  OpMetrics& of(OpKind kind) { return ops[size_t(kind)]; }
  const OpMetrics& of(OpKind kind) const { return ops[size_t(kind)]; }

  void Merge(const PhaseMetrics& other) {
    for (size_t i = 0; i < kNumOpKinds; ++i) ops[i].Merge(other.ops[i]);
  }

  uint64_t total_attempted() const {
    uint64_t total = 0;
    for (const OpMetrics& op : ops) total += op.attempted;
    return total;
  }
  uint64_t total_failed() const {
    uint64_t total = 0;
    for (const OpMetrics& op : ops) total += op.failed;
    return total;
  }
  uint64_t total_shed() const {
    uint64_t total = 0;
    for (const OpMetrics& op : ops) total += op.shed;
    return total;
  }
  uint64_t total_timed_out() const {
    uint64_t total = 0;
    for (const OpMetrics& op : ops) total += op.timed_out;
    return total;
  }
};

}  // namespace kaskade::workload

#endif  // KASKADE_WORKLOAD_METRICS_H_
