#include "workload/orchestrator.h"

#include <atomic>
#include <thread>

namespace kaskade::workload {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

std::chrono::steady_clock::time_point WorkloadRunner::StartGate::Await() {
  std::unique_lock<std::mutex> lock(mu);
  ++arrived;
  cv.notify_all();
  cv.wait(lock, [&] { return open; });
  return start;
}

std::chrono::steady_clock::time_point WorkloadRunner::StartGate::Release(
    size_t expected) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return arrived >= expected; });
  start = Clock::now();
  open = true;
  cv.notify_all();
  return start;
}

WorkloadRunner::WorkloadRunner(core::Engine* engine, GeneratorProfile profile,
                               RunnerOptions options)
    : engine_(engine), profile_(std::move(profile)), options_(options) {}

Status WorkloadRunner::IssueOp(const Op& op, const core::CallOptions& call,
                               std::vector<graph::EdgeId>* owned_edges) {
  switch (op.kind) {
    case OpKind::kExecute: {
      Result<core::ExecutionResult> result =
          engine_->Execute(op.query.text, call);
      if (!result.ok()) return result.status();
      if (options_.check_result_shape &&
          result->table.num_columns() != op.query.columns) {
        return Status::Internal(
            "torn read: query '" + op.query.text + "' returned " +
            std::to_string(result->table.num_columns()) + " columns, want " +
            std::to_string(op.query.columns));
      }
      return Status::OK();
    }
    case OpKind::kExecuteBatch: {
      std::vector<std::string> texts;
      texts.reserve(op.batch.size());
      for (const GeneratedQuery& q : op.batch) texts.push_back(q.text);
      std::vector<Result<core::ExecutionResult>> results =
          engine_->ExecuteBatch(texts, call);
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) return results[i].status();
        if (options_.check_result_shape &&
            results[i]->table.num_columns() != op.batch[i].columns) {
          return Status::Internal(
              "torn read: batch query '" + op.batch[i].text + "' returned " +
              std::to_string(results[i]->table.num_columns()) +
              " columns, want " + std::to_string(op.batch[i].columns));
        }
      }
      return Status::OK();
    }
    case OpKind::kApplyDelta: {
      graph::GraphDelta delta;
      for (const auto& [src_slot, dst_slot] : op.delta.inserts) {
        delta.AddEdge(profile_.delta_sources[src_slot],
                      profile_.delta_targets[dst_slot],
                      profile_.insert_edge_type);
      }
      // Removals draw only from this thread's own past inserts, so two
      // threads never contend for the same edge id. Slots are resolved
      // against the current owned list and the chosen edge leaves it
      // (no double removal). While the thread owns nothing the removal
      // part of the plan is skipped.
      for (uint64_t slot : op.delta.removal_slots) {
        if (owned_edges->empty()) break;
        size_t pick = size_t(slot % owned_edges->size());
        delta.RemoveEdge((*owned_edges)[pick]);
        (*owned_edges)[pick] = owned_edges->back();
        owned_edges->pop_back();
      }
      if (delta.empty()) return Status::OK();
      Result<core::DeltaReport> report = engine_->ApplyDelta(std::move(delta));
      if (!report.ok()) return report.status();
      owned_edges->insert(owned_edges->end(), report->new_edges.begin(),
                          report->new_edges.end());
      return Status::OK();
    }
    case OpKind::kMutateBase: {
      graph::VertexId src = profile_.delta_sources[op.mutate_slots.first];
      graph::VertexId dst = profile_.delta_targets[op.mutate_slots.second];
      return engine_->MutateBaseGraph([&](graph::PropertyGraph* g) {
        return g->AddEdge(src, dst, profile_.insert_edge_type, {}).status();
      });
    }
    case OpKind::kAutoAdvise:
      return engine_->AutoAdvise().status();
  }
  return Status::Internal("unreachable op kind");
}

void WorkloadRunner::RunThread(const PhaseSpec& phase, size_t phase_index,
                               size_t thread_index, uint64_t workload_seed,
                               StartGate* gate, ThreadOutcome* out) {
  OpGenerator gen(&profile_, &phase, workload_seed, phase_index, thread_index);
  std::vector<graph::EdgeId> owned_edges;

  // Open loop: this thread's share of the phase arrival rate.
  const bool open_loop = phase.rate_ops_per_sec > 0;
  const double interval_us =
      open_loop ? 1e6 / (phase.rate_ops_per_sec / double(phase.threads)) : 0;

  const Clock::time_point start = gate->Await();
  const Clock::time_point deadline =
      phase.duration_ms > 0
          ? start + std::chrono::milliseconds(phase.duration_ms)
          : Clock::time_point::max();

  for (uint64_t i = 0;; ++i) {
    if (phase.ops_per_thread > 0 && i >= phase.ops_per_thread) break;
    if (phase.duration_ms > 0 && Clock::now() >= deadline) break;

    Op op = gen.Next();
    out->digest = OpDigest(op, out->digest);

    // The op's schedule slot. Under open loop we sleep until it; if the
    // engine fell behind, the slot is already past and we issue
    // immediately — the wait the op accrued still counts against its
    // corrected latency below (coordinated-omission correction).
    Clock::time_point intended = start;
    if (open_loop) {
      intended += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::micro>(double(i) * interval_us));
      std::this_thread::sleep_until(intended);
    }
    const Clock::time_point issued = Clock::now();
    if (!open_loop) intended = issued;

    // The op's SLA is anchored at its *intended* start: an op that got
    // to issue late because the engine is saturated has already spent
    // part of its budget — under overload the backlog's tail arrives
    // pre-expired, exactly as a deadline-bound client would see it.
    core::CallOptions call;
    if (phase.deadline_ms > 0 &&
        (op.kind == OpKind::kExecute || op.kind == OpKind::kExecuteBatch)) {
      call.deadline = intended + std::chrono::milliseconds(phase.deadline_ms);
    }

    Status status = IssueOp(op, call, &owned_edges);

    const Clock::time_point done = Clock::now();
    OpMetrics& metrics = out->metrics.of(op.kind);
    ++metrics.attempted;
    if (!status.ok()) {
      // Shed and timed-out ops are overload behaving as designed, not
      // errors: they never gate a run's pass/fail and keep their own
      // counters.
      if (status.code() == StatusCode::kUnavailable) {
        ++metrics.shed;
      } else if (status.code() == StatusCode::kDeadlineExceeded) {
        ++metrics.timed_out;
      } else {
        ++metrics.failed;
        if (out->first_error.ok()) out->first_error = status;
      }
    }
    metrics.latency.Record(MicrosBetween(intended, done));
    metrics.service.Record(MicrosBetween(issued, done));
  }
}

Result<RunResult> WorkloadRunner::Run(const WorkloadSpec& spec) {
  KASKADE_RETURN_IF_ERROR(ValidateWorkloadSpec(spec));
  if (spec.dataset != profile_.dataset) {
    return Status::InvalidArgument("workload dataset '" + spec.dataset +
                                   "' does not match generator profile '" +
                                   profile_.dataset + "'");
  }

  RunResult run;
  run.workload_name = spec.name;
  run.seed = spec.seed;
  run.dataset = spec.dataset;
  run.phases.reserve(spec.phases.size());

  for (size_t p = 0; p < spec.phases.size(); ++p) {
    const PhaseSpec& phase = spec.phases[p];
    PhaseResult result;
    result.name = phase.name;
    result.before = engine_->TelemetrySnapshot();

    StartGate gate;
    std::vector<ThreadOutcome> outcomes(phase.threads);
    std::vector<std::thread> threads;
    threads.reserve(phase.threads);
    for (size_t t = 0; t < phase.threads; ++t) {
      threads.emplace_back([this, &phase, p, t, &spec, &gate, &outcomes] {
        RunThread(phase, p, t, spec.seed, &gate, &outcomes[t]);
      });
    }
    const Clock::time_point start = gate.Release(phase.threads);
    for (std::thread& t : threads) t.join();
    result.wall_seconds = SecondsBetween(start, Clock::now());

    for (const ThreadOutcome& outcome : outcomes) {
      result.metrics.Merge(outcome.metrics);
      result.op_digest ^= outcome.digest;
      if (result.first_error.ok() && !outcome.first_error.ok()) {
        result.first_error = outcome.first_error;
      }
    }

    // Out-of-band mutations leave views stale by contract; bring them
    // back to exact before the next phase measures anything.
    if (result.metrics.of(OpKind::kMutateBase).attempted > 0) {
      const Clock::time_point refresh_start = Clock::now();
      Status refreshed = engine_->RefreshViews();
      result.refresh_seconds = SecondsBetween(refresh_start, Clock::now());
      if (result.first_error.ok() && !refreshed.ok()) {
        result.first_error = refreshed;
      }
    }

    result.after = engine_->TelemetrySnapshot();
    run.phases.push_back(std::move(result));
  }
  return run;
}

}  // namespace kaskade::workload
