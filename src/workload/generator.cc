#include "workload/generator.h"

#include <algorithm>

#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "graph/schema.h"

namespace kaskade::workload {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }

uint64_t FnvString(uint64_t h, const std::string& s) {
  h = FnvU64(h, s.size());
  return FnvBytes(h, s.data(), s.size());
}

/// SplitMix64 finalizer: decorrelates the (seed, phase, thread) triple
/// into one well-mixed mt19937_64 seed.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::vector<graph::VertexId> LiveVerticesOfType(const graph::PropertyGraph& g,
                                                const std::string& type_name) {
  graph::VertexTypeId type = g.schema().FindVertexType(type_name);
  if (type == graph::kInvalidTypeId) return {};
  std::vector<graph::VertexId> ids = g.VerticesOfType(type);
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [&](graph::VertexId v) { return !g.IsVertexLive(v); }),
            ids.end());
  return ids;
}

}  // namespace

uint64_t OpDigest(const Op& op, uint64_t seed_digest) {
  uint64_t h = seed_digest == 0 ? kFnvOffset : seed_digest;
  h = FnvU64(h, uint64_t(op.kind));
  switch (op.kind) {
    case OpKind::kExecute:
      h = FnvString(h, op.query.text);
      break;
    case OpKind::kExecuteBatch:
      h = FnvU64(h, op.batch.size());
      for (const GeneratedQuery& q : op.batch) h = FnvString(h, q.text);
      break;
    case OpKind::kApplyDelta:
      h = FnvU64(h, op.delta.inserts.size());
      for (const auto& [src, dst] : op.delta.inserts) {
        h = FnvU64(h, (uint64_t(src) << 32) | dst);
      }
      h = FnvU64(h, op.delta.removal_slots.size());
      for (uint64_t slot : op.delta.removal_slots) h = FnvU64(h, slot);
      break;
    case OpKind::kMutateBase:
      h = FnvU64(h,
                 (uint64_t(op.mutate_slots.first) << 32) | op.mutate_slots.second);
      break;
    case OpKind::kAutoAdvise:
      break;
  }
  return h;
}

Result<GeneratorProfile> GeneratorProfile::ForDataset(
    const std::string& dataset, const graph::PropertyGraph& g) {
  GeneratorProfile profile;
  profile.dataset = dataset;
  if (dataset == "social") {
    profile.delta_sources = LiveVerticesOfType(g, "Person");
    profile.delta_targets = profile.delta_sources;
    profile.insert_edge_type = "FOLLOWS";
    if (profile.delta_sources.empty()) {
      return Status::InvalidArgument(
          "social generator profile: graph has no live Person vertices");
    }
  } else if (dataset == "prov") {
    profile.delta_sources = LiveVerticesOfType(g, "Job");
    profile.delta_targets = LiveVerticesOfType(g, "File");
    profile.insert_edge_type = "WRITES_TO";
    if (profile.delta_sources.empty() || profile.delta_targets.empty()) {
      return Status::InvalidArgument(
          "prov generator profile: graph needs live Job and File vertices");
    }
  } else {
    return Status::InvalidArgument("unknown generator dataset '" + dataset +
                                   "' (want social | prov)");
  }
  return profile;
}

OpGenerator::OpGenerator(const GeneratorProfile* profile,
                         const PhaseSpec* phase, uint64_t workload_seed,
                         size_t phase_index, size_t thread_index)
    : profile_(profile),
      phase_(phase),
      rng_(Mix(Mix(workload_seed) ^ Mix(0x9e03u + phase_index * 0x10001ull) ^
               Mix(0x7f11u + thread_index * 0x100000001ull))) {}

uint32_t OpGenerator::ZipfSlot(size_t pool_size) {
  size_t params = std::min(profile_->distinct_params, pool_size);
  if (params == 0) return 0;
  int rank = datasets::SampleZipf(NextUnit(), profile_->param_zipf_alpha,
                                  int(params));
  // Scatter ranks multiplicatively so hot parameters are spread across
  // the id space instead of clustered at low ids.
  return uint32_t((uint64_t(rank) * 2654435761ull) % pool_size);
}

GeneratedQuery OpGenerator::SocialQuery() {
  // Template family weights: point lookups dominate (interactive
  // traffic), scans are the rare heavy analytical tail.
  double u = NextUnit() * 100.0;
  const auto& pool = profile_->delta_sources;
  const auto handle = [&](uint32_t slot) {
    return "person_" + std::to_string(pool[slot]);
  };
  if (u < 40) {
    // Point 1-hop.
    return {"MATCH (a:Person)-[:FOLLOWS]->(b:Person) WHERE a.handle = '" +
                handle(ZipfSlot(pool.size())) + "' RETURN a, b",
            2};
  }
  if (u < 65) {
    // Point 2-hop chain — the shape a khop2 connector view serves.
    return {"MATCH (a:Person)-[:FOLLOWS]->(b:Person) "
            "(b:Person)-[:FOLLOWS]->(c:Person) WHERE a.handle = '" +
                handle(ZipfSlot(pool.size())) + "' RETURN a, c",
            2};
  }
  if (u < 90) {
    // Point variable-length traversal.
    return {"MATCH (a:Person)-[r*1..2]->(b:Person) WHERE a.handle = '" +
                handle(ZipfSlot(pool.size())) + "' RETURN b",
            1};
  }
  if (u < 95) {
    // Full 1-hop scan.
    return {"MATCH (a:Person)-[:FOLLOWS]->(b:Person) RETURN a, b", 2};
  }
  // Full variable-length scan: the heavy analytical query that makes
  // the advisor want a connector view.
  return {"MATCH (a:Person)-[r*1..2]->(b:Person) RETURN a, b", 2};
}

GeneratedQuery OpGenerator::ProvQuery() {
  double u = NextUnit() * 100.0;
  if (u < 35) {
    return {"MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f", 2};
  }
  if (u < 65) {
    return {"MATCH (a:Job)-[:WRITES_TO]->(f:File) "
            "(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b",
            2};
  }
  if (u < 90) {
    // Variable-length ancestors, Zipf-skewed over hop depth 2..4.
    int hops = 1 + datasets::SampleZipf(NextUnit(), 1.3, 3);
    return {datasets::AncestorsQueryText("Job", hops), 2};
  }
  return {"MATCH (f:File)-[:IS_READ_BY]->(j:Job) RETURN f", 1};
}

GeneratedQuery OpGenerator::NextQuery() {
  return profile_->dataset == "prov" ? ProvQuery() : SocialQuery();
}

Op OpGenerator::Next() {
  Op op;
  // Weighted op-kind choice over the phase mix.
  double total = 0;
  for (double w : phase_->mix) total += w;
  double pick = NextUnit() * total;
  size_t kind = 0;
  for (; kind + 1 < kNumOpKinds; ++kind) {
    pick -= phase_->mix[kind];
    if (pick < 0) break;
  }
  op.kind = OpKind(kind);

  switch (op.kind) {
    case OpKind::kExecute:
      op.query = NextQuery();
      break;
    case OpKind::kExecuteBatch:
      op.batch.reserve(phase_->batch_size);
      for (size_t i = 0; i < phase_->batch_size; ++i) {
        op.batch.push_back(NextQuery());
      }
      break;
    case OpKind::kApplyDelta: {
      // ~1/4 removals of this thread's previously inserted edges, the
      // rest fresh inserts between pool endpoints.
      size_t removals = phase_->delta_edges / 4;
      size_t inserts = phase_->delta_edges - removals;
      op.delta.inserts.reserve(inserts);
      for (size_t i = 0; i < inserts; ++i) {
        uint32_t src = uint32_t(NextU64() % profile_->delta_sources.size());
        uint32_t dst = uint32_t(NextU64() % profile_->delta_targets.size());
        op.delta.inserts.emplace_back(src, dst);
      }
      op.delta.removal_slots.reserve(removals);
      for (size_t i = 0; i < removals; ++i) {
        op.delta.removal_slots.push_back(NextU64());
      }
      break;
    }
    case OpKind::kMutateBase:
      op.mutate_slots = {
          uint32_t(NextU64() % profile_->delta_sources.size()),
          uint32_t(NextU64() % profile_->delta_targets.size())};
      break;
    case OpKind::kAutoAdvise:
      break;
  }
  return op;
}

}  // namespace kaskade::workload
