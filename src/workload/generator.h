/// \file generator.h
/// \brief Deterministic per-thread op streams for the serving harness.
///
/// Each client thread of a phase owns one `OpGenerator`, seeded from
/// `(spec seed, phase index, thread index)` — the genny discipline: the
/// whole run's generated op sequence is a pure function of the spec, so
/// two runs with the same seed issue byte-identical traffic regardless
/// of scheduling (the engine's *responses* may differ; the offered load
/// never does). The generator deliberately avoids `std::*_distribution`
/// (whose mappings are implementation-defined) in favor of explicit
/// arithmetic on `std::mt19937_64` output, which the standard pins down
/// bit-for-bit.
///
/// Queries are drawn from parameterized template pools per dataset —
/// k-hop chains, variable-length traversals, and predicate point
/// lookups — with Zipf-skewed parameter choice over a bounded pool of
/// distinct texts, so the engine's workload tracker observes the
/// hot-pattern skew real serving traffic has (and the advisor has
/// something to act on).
///
/// Mutations are planned symbolically: a delta plan names *slots* into
/// the profile's endpoint pools (inserts) and into the issuing thread's
/// list of previously-inserted edges (removals). Slot choice is part of
/// the deterministic stream; only the final id resolution (slot modulo
/// the thread's current owned-edge count) depends on runtime history.
/// Threads only ever remove edges they themselves inserted, so
/// concurrent delta ops never race on the same edge id.

#ifndef KASKADE_WORKLOAD_GENERATOR_H_
#define KASKADE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"
#include "workload/spec.h"

namespace kaskade::workload {

/// \brief One generated query: text plus the shape the result must
/// have (used by the harness's torn-read check).
struct GeneratedQuery {
  std::string text;
  size_t columns = 0;
};

/// \brief Symbolic plan for one `ApplyDelta` batch.
struct DeltaPlan {
  /// (source-pool slot, target-pool slot) per inserted edge.
  std::vector<std::pair<uint32_t, uint32_t>> inserts;
  /// Per removal: resolved at issue time as `slot % owned_edges.size()`
  /// against the issuing thread's inserted-edge list (skipped while the
  /// thread owns nothing).
  std::vector<uint64_t> removal_slots;
};

/// \brief One generated op.
struct Op {
  OpKind kind = OpKind::kExecute;
  GeneratedQuery query;               ///< kExecute
  std::vector<GeneratedQuery> batch;  ///< kExecuteBatch
  DeltaPlan delta;                    ///< kApplyDelta
  /// kMutateBase: endpoint pool slots of the one appended edge.
  std::pair<uint32_t, uint32_t> mutate_slots{0, 0};
};

/// Order-sensitive FNV-1a digest of one op's full symbolic content.
/// Equal digests across runs are the reproducibility proof the bench
/// emits per phase.
uint64_t OpDigest(const Op& op, uint64_t seed_digest);

/// \brief Immutable, thread-shared description of how to generate
/// traffic for one dataset: query template pools and mutation endpoint
/// pools.
struct GeneratorProfile {
  std::string dataset;
  /// Live vertex ids usable as insert sources / targets (equal for
  /// homogeneous datasets).
  std::vector<graph::VertexId> delta_sources;
  std::vector<graph::VertexId> delta_targets;
  std::string insert_edge_type;
  /// Distinct parameter values per point-lookup template family; Zipf
  /// rank selection over this pool produces the hot-text skew.
  size_t distinct_params = 64;
  double param_zipf_alpha = 1.1;

  /// Builds the profile for `dataset` ("social" | "prov") from the
  /// graph the engine serves. Fails when the graph lacks the dataset's
  /// expected vertex types.
  static Result<GeneratorProfile> ForDataset(const std::string& dataset,
                                             const graph::PropertyGraph& g);
};

/// \brief Deterministic op stream for one (phase, thread) pair.
class OpGenerator {
 public:
  OpGenerator(const GeneratorProfile* profile, const PhaseSpec* phase,
              uint64_t workload_seed, size_t phase_index, size_t thread_index);

  /// Next op of the stream. Pure function of construction parameters
  /// and call count.
  Op Next();

  /// Next generated query (what kExecute issues; kExecuteBatch draws
  /// `batch_size` of these). Exposed for tests.
  GeneratedQuery NextQuery();

 private:
  uint64_t NextU64() { return rng_(); }
  /// Uniform double in [0, 1) from the top 53 bits.
  double NextUnit() { return double(rng_() >> 11) * 0x1.0p-53; }
  /// Zipf-ranked slot in [0, pool_size) with multiplicative scatter, so
  /// hot ranks map to spread-out pool entries.
  uint32_t ZipfSlot(size_t pool_size);

  GeneratedQuery SocialQuery();
  GeneratedQuery ProvQuery();

  const GeneratorProfile* profile_;
  const PhaseSpec* phase_;
  std::mt19937_64 rng_;
};

}  // namespace kaskade::workload

#endif  // KASKADE_WORKLOAD_GENERATOR_H_
