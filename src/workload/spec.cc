#include "workload/spec.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace kaskade::workload {

namespace {

constexpr const char* kOpNames[kNumOpKinds] = {
    "execute", "execute_batch", "apply_delta", "mutate_base", "auto_advise"};

/// Index of `name` in kOpNames, or kNumOpKinds when unknown.
size_t OpIndexOf(const std::string& name) {
  for (size_t i = 0; i < kNumOpKinds; ++i) {
    if (name == kOpNames[i]) return i;
  }
  return kNumOpKinds;
}

Status ParseError(size_t line, const std::string& message) {
  return Status::InvalidArgument("workload spec line " + std::to_string(line) +
                                 ": " + message);
}

/// Splits `line` into whitespace-separated tokens, dropping `#` comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Result<uint64_t> ParseU64(const std::string& token, size_t line,
                          const std::string& key) {
  uint64_t value = 0;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return ParseError(line, "'" + key + "' expects a non-negative integer, "
                                          "got '" + token + "'");
    }
    value = value * 10 + uint64_t(c - '0');
  }
  if (token.empty()) return ParseError(line, "'" + key + "' expects a value");
  return value;
}

Result<double> ParseDouble(const std::string& token, size_t line,
                           const std::string& key) {
  try {
    size_t consumed = 0;
    double value = std::stod(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    return ParseError(line, "'" + key + "' expects a number, got '" + token +
                                "'");
  }
}

/// Renders a double without trailing zeros ("5000", "2.5") so ToText is
/// stable under parse/render cycles.
std::string RenderDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

const char* OpKindName(OpKind kind) { return kOpNames[size_t(kind)]; }

Status ValidateWorkloadSpec(const WorkloadSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("workload spec: empty workload name");
  }
  if (spec.dataset != "social" && spec.dataset != "prov") {
    return Status::InvalidArgument("workload spec: unknown dataset '" +
                                   spec.dataset + "' (want social | prov)");
  }
  if (spec.phases.empty()) {
    return Status::InvalidArgument("workload spec: at least one phase");
  }
  for (const PhaseSpec& phase : spec.phases) {
    const std::string where = "workload spec: phase '" + phase.name + "': ";
    if (phase.name.empty()) {
      return Status::InvalidArgument("workload spec: phase with empty name");
    }
    if (phase.threads == 0) {
      return Status::InvalidArgument(where + "threads must be >= 1");
    }
    if (!(phase.rate_ops_per_sec >= 0) ||
        !std::isfinite(phase.rate_ops_per_sec)) {
      return Status::InvalidArgument(where +
                                     "rate must be finite and non-negative");
    }
    if ((phase.ops_per_thread == 0) == (phase.duration_ms == 0)) {
      return Status::InvalidArgument(
          where + "exactly one of ops_per_thread / duration_ms must be set");
    }
    double weight_sum = 0;
    for (size_t i = 0; i < kNumOpKinds; ++i) {
      if (!(phase.mix[i] >= 0) || !std::isfinite(phase.mix[i])) {
        return Status::InvalidArgument(where + "mix weight for '" +
                                       kOpNames[i] + "' must be >= 0");
      }
      weight_sum += phase.mix[i];
    }
    if (weight_sum <= 0) {
      return Status::InvalidArgument(where + "mix needs a positive weight");
    }
    if (phase.weight(OpKind::kExecuteBatch) > 0 && phase.batch_size == 0) {
      return Status::InvalidArgument(where + "batch_size must be >= 1");
    }
    if (phase.weight(OpKind::kApplyDelta) > 0 && phase.delta_edges == 0) {
      return Status::InvalidArgument(where + "delta_edges must be >= 1");
    }
  }
  return Status::OK();
}

Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text) {
  WorkloadSpec spec;
  spec.name.clear();  // must be set explicitly by the `workload` line
  PhaseSpec phase;
  bool in_phase = false;
  bool saw_workload = false;

  std::istringstream lines(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];

    if (!in_phase) {
      if (key == "workload") {
        if (tokens.size() != 2) {
          return ParseError(line_number, "'workload' expects one name");
        }
        spec.name = tokens[1];
        saw_workload = true;
      } else if (key == "seed") {
        if (tokens.size() != 2) {
          return ParseError(line_number, "'seed' expects one value");
        }
        KASKADE_ASSIGN_OR_RETURN(spec.seed,
                                 ParseU64(tokens[1], line_number, "seed"));
      } else if (key == "dataset") {
        if (tokens.size() != 2) {
          return ParseError(line_number, "'dataset' expects one value");
        }
        spec.dataset = tokens[1];
      } else if (key == "phase") {
        if (tokens.size() != 2) {
          return ParseError(line_number, "'phase' expects one name");
        }
        phase = PhaseSpec{};
        phase.name = tokens[1];
        in_phase = true;
      } else {
        return ParseError(line_number,
                          "unknown top-level key '" + key +
                              "' (want workload | seed | dataset | phase)");
      }
      continue;
    }

    // Inside a `phase ... end` block.
    if (key == "end") {
      if (tokens.size() != 1) {
        return ParseError(line_number, "'end' takes no arguments");
      }
      spec.phases.push_back(std::move(phase));
      in_phase = false;
    } else if (key == "threads") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "'threads' expects one value");
      }
      KASKADE_ASSIGN_OR_RETURN(phase.threads,
                               ParseU64(tokens[1], line_number, "threads"));
    } else if (key == "rate") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "'rate' expects one value");
      }
      KASKADE_ASSIGN_OR_RETURN(phase.rate_ops_per_sec,
                               ParseDouble(tokens[1], line_number, "rate"));
    } else if (key == "ops_per_thread") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "'ops_per_thread' expects one value");
      }
      KASKADE_ASSIGN_OR_RETURN(
          phase.ops_per_thread,
          ParseU64(tokens[1], line_number, "ops_per_thread"));
    } else if (key == "duration_ms") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "'duration_ms' expects one value");
      }
      KASKADE_ASSIGN_OR_RETURN(phase.duration_ms,
                               ParseU64(tokens[1], line_number, "duration_ms"));
    } else if (key == "batch_size") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "'batch_size' expects one value");
      }
      KASKADE_ASSIGN_OR_RETURN(phase.batch_size,
                               ParseU64(tokens[1], line_number, "batch_size"));
    } else if (key == "delta_edges") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "'delta_edges' expects one value");
      }
      KASKADE_ASSIGN_OR_RETURN(
          phase.delta_edges, ParseU64(tokens[1], line_number, "delta_edges"));
    } else if (key == "deadline_ms") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "'deadline_ms' expects one value");
      }
      KASKADE_ASSIGN_OR_RETURN(
          phase.deadline_ms, ParseU64(tokens[1], line_number, "deadline_ms"));
    } else if (key == "mix") {
      if (tokens.size() < 2) {
        return ParseError(line_number,
                          "'mix' expects op=weight pairs, e.g. execute=90");
      }
      for (size_t t = 1; t < tokens.size(); ++t) {
        const std::string& pair = tokens[t];
        size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
          return ParseError(line_number, "mix entry '" + pair +
                                             "' is not of the form op=weight");
        }
        const std::string op_name = pair.substr(0, eq);
        size_t op = OpIndexOf(op_name);
        if (op == kNumOpKinds) {
          return ParseError(line_number, "unknown op '" + op_name +
                                             "' in mix (want execute | "
                                             "execute_batch | apply_delta | "
                                             "mutate_base | auto_advise)");
        }
        KASKADE_ASSIGN_OR_RETURN(
            phase.mix[op], ParseDouble(pair.substr(eq + 1), line_number,
                                       "mix " + op_name));
      }
    } else {
      return ParseError(
          line_number,
          "unknown phase key '" + key +
              "' (want threads | rate | ops_per_thread | duration_ms | mix | "
              "batch_size | delta_edges | deadline_ms | end)");
    }
  }

  if (in_phase) {
    return ParseError(line_number, "phase '" + phase.name +
                                       "' is missing its 'end'");
  }
  if (!saw_workload) {
    return Status::InvalidArgument(
        "workload spec: missing the 'workload <name>' line");
  }
  KASKADE_RETURN_IF_ERROR(ValidateWorkloadSpec(spec));
  return spec;
}

std::string WorkloadSpec::ToText() const {
  std::ostringstream out;
  out << "workload " << name << "\n";
  out << "seed " << seed << "\n";
  out << "dataset " << dataset << "\n";
  for (const PhaseSpec& phase : phases) {
    out << "phase " << phase.name << "\n";
    out << "  threads " << phase.threads << "\n";
    out << "  rate " << RenderDouble(phase.rate_ops_per_sec) << "\n";
    if (phase.ops_per_thread != 0) {
      out << "  ops_per_thread " << phase.ops_per_thread << "\n";
    }
    if (phase.duration_ms != 0) {
      out << "  duration_ms " << phase.duration_ms << "\n";
    }
    out << "  mix";
    for (size_t i = 0; i < kNumOpKinds; ++i) {
      if (phase.mix[i] > 0) {
        out << " " << kOpNames[i] << "=" << RenderDouble(phase.mix[i]);
      }
    }
    out << "\n";
    out << "  batch_size " << phase.batch_size << "\n";
    out << "  delta_edges " << phase.delta_edges << "\n";
    if (phase.deadline_ms != 0) {
      out << "  deadline_ms " << phase.deadline_ms << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

}  // namespace kaskade::workload
