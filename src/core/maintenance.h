/// \file maintenance.h
/// \brief Incremental maintenance of materialized graph views.
///
/// The paper defers view maintenance to the graph-view literature it
/// builds on (Zhuge & Garcia-Molina, ICDE'98 — see §VIII); this module
/// implements it for Kaskade's view classes under *edge insertions* (the
/// provenance workload is append-only: jobs and lineage edges only ever
/// arrive).
///
/// For a k-hop connector, inserting base edge (u -> v) creates exactly
/// the k-paths that use the new edge: every simple path formed by a
/// backward extension of length i from u and a forward extension of
/// length k-1-i from v (0 <= i <= k-1). The maintainer enumerates those
/// and upserts the corresponding connector edges, updating the "paths"
/// multiplicity — O(sum_i deg^i * deg^(k-1-i)) per insertion instead of
/// re-materializing the whole view.
///
/// For type-filter summarizers, insertion is a constant-time type check
/// plus a copy.

#ifndef KASKADE_CORE_MAINTENANCE_H_
#define KASKADE_CORE_MAINTENANCE_H_

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/result.h"
#include "core/materializer.h"
#include "graph/property_graph.h"

namespace kaskade::core {

/// \brief Statistics from one maintenance operation.
struct MaintenanceStats {
  uint64_t paths_added = 0;       ///< New contracted paths (connectors).
  uint64_t edges_added = 0;       ///< New view edges created.
  uint64_t edges_updated = 0;     ///< Existing view edges re-weighted.
  uint64_t vertices_added = 0;    ///< New view vertices created.
};

/// \brief Keeps one materialized view consistent with an append-only base
/// graph.
///
/// Usage: materialize a view, construct a maintainer over base+view, then
/// call `OnEdgeAdded(e)` for every edge appended to the base graph (in
/// append order). Supported view kinds: k-hop connectors and the four
/// type-filter summarizers. `Unimplemented` is returned for other kinds
/// (re-materialize instead).
///
/// Invariant (tested property): after any insertion sequence, the
/// maintained view graph has the same edge multiset — including "paths"
/// multiplicities — as `Materialize(base, definition)` run from scratch.
class ViewMaintainer {
 public:
  /// True for the view kinds this maintainer supports incrementally
  /// (k-hop connectors and the four type-filter summarizers). Other
  /// kinds must be re-materialized on base-graph change.
  static bool SupportsKind(ViewKind kind);

  /// Binds to a base graph and a view previously materialized from it.
  /// The maintainer indexes the current view; O(view size).
  ViewMaintainer(const graph::PropertyGraph* base, MaterializedView* view);

  /// Applies the consequences of base edge `e` (which must already be in
  /// the base graph) to the view. Edges must be reported exactly once,
  /// in insertion order.
  Result<MaintenanceStats> OnEdgeAdded(graph::EdgeId e);

  /// Convenience: processes every base edge beyond the watermark the
  /// maintainer has seen (edge ids are dense and append-only).
  Result<MaintenanceStats> CatchUp();

 private:
  Result<MaintenanceStats> MaintainConnector(graph::EdgeId e);
  Result<MaintenanceStats> MaintainFilterSummarizer(graph::EdgeId e);

  /// View vertex for a base vertex, creating it (with copied properties
  /// and orig_id) on first use.
  graph::VertexId ViewVertexFor(graph::VertexId base_vertex,
                                MaintenanceStats* stats);

  /// Upserts a connector edge (src, dst) with `paths` new contracted
  /// paths.
  Status UpsertConnectorEdge(graph::VertexId base_src,
                             graph::VertexId base_dst, uint64_t paths,
                             MaintenanceStats* stats);

  const graph::PropertyGraph* base_;
  MaterializedView* view_;
  graph::EdgeTypeId connector_type_ = graph::kInvalidTypeId;
  graph::VertexTypeId source_type_ = graph::kInvalidTypeId;
  graph::VertexTypeId target_type_ = graph::kInvalidTypeId;
  /// base vertex id -> view vertex id.
  std::unordered_map<graph::VertexId, graph::VertexId> base_to_view_;
  /// (view src, view dst) -> view edge id (connector edges are unique per
  /// pair under deduplicated materialization).
  std::map<std::pair<graph::VertexId, graph::VertexId>, graph::EdgeId>
      connector_edges_;
  /// Edge types preserved by a filter summarizer.
  std::vector<bool> keep_edge_type_;
  std::vector<bool> keep_vertex_type_;
  /// First base edge id not yet processed.
  graph::EdgeId watermark_ = 0;
  /// First base vertex id not yet processed (summarizers copy kept
  /// vertices even when isolated).
  graph::VertexId vertex_watermark_ = 0;
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_MAINTENANCE_H_
