/// \file maintenance.h
/// \brief Incremental maintenance of materialized graph views under
/// arbitrary edge deltas (insert + delete + mixed batches).
///
/// The paper defers view maintenance to the graph-view literature it
/// builds on (Zhuge & Garcia-Molina, ICDE'98 — see §VIII); this module
/// implements it for Kaskade's view classes. Maintenance is no longer
/// append-only: `OnEdgeAdded`, `OnEdgeRemoved`, and the batched
/// `ApplyDelta(GraphDelta)` keep a view exact under any insert/delete
/// sequence.
///
/// Delta model. For a k-hop connector, base edge (u -> v) participates in
/// exactly the k-paths formed by a backward extension of length i from u
/// and a forward extension of length k-1-i from v (0 <= i <= k-1).
/// Insertion enumerates those paths and *increments* the "paths"
/// multiplicity of the contracted (s, t) connector edges; removal
/// enumerates the same decomposition and *decrements*, removing view
/// edges whose multiplicity reaches zero and garbage-collecting view
/// vertices left without live incident edges (mirroring from-scratch
/// contraction, which only emits path endpoints). Either direction is
/// O(sum_i deg^i * deg^(k-1-i)) per base edge instead of re-materializing
/// the whole view. For type-filter summarizers both directions are a
/// constant-time type/predicate check; summarizer vertices are kept by
/// type, so edge removal never collects them.
///
/// Batches: within one `ApplyDelta`, removal r_i is accounted on the
/// graph state where r_1..r_i are gone but later removals of the same
/// batch are still present (the maintainer keeps side adjacency for
/// them), and insertions only count paths through edges with smaller
/// ids — together this makes every path counted exactly once regardless
/// of batch composition.
///
/// Fallback: view kinds without a maintainer (variable-length
/// connectors, source-to-sink connectors, and the two aggregator
/// summarizers — see `SupportsKind`) are re-materialized on base-graph
/// change; `ViewCatalog::ApplyBaseDelta` also re-materializes a
/// *supported* view when the cost model predicts a from-scratch build is
/// cheaper than a delete-heavy incremental pass.

#ifndef KASKADE_CORE_MAINTENANCE_H_
#define KASKADE_CORE_MAINTENANCE_H_

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/result.h"
#include "core/materializer.h"
#include "graph/delta.h"
#include "graph/property_graph.h"

namespace kaskade::core {

/// \brief Statistics from one maintenance operation. Additions and
/// removals balance: across any run, `edges_added - edges_removed`
/// equals the view's live-edge delta (ditto vertices and "paths"
/// multiplicities), which the differential tests assert.
struct MaintenanceStats {
  uint64_t paths_added = 0;       ///< New contracted paths (connectors).
  uint64_t paths_removed = 0;     ///< Contracted paths subtracted.
  uint64_t edges_added = 0;       ///< New view edges created.
  uint64_t edges_removed = 0;     ///< View edges dropped (multiplicity 0).
  uint64_t edges_updated = 0;     ///< Existing view edges re-weighted.
  uint64_t vertices_added = 0;    ///< New view vertices created.
  uint64_t vertices_removed = 0;  ///< Orphaned view vertices collected.

  MaintenanceStats& operator+=(const MaintenanceStats& other) {
    paths_added += other.paths_added;
    paths_removed += other.paths_removed;
    edges_added += other.edges_added;
    edges_removed += other.edges_removed;
    edges_updated += other.edges_updated;
    vertices_added += other.vertices_added;
    vertices_removed += other.vertices_removed;
    return *this;
  }
};

/// \brief Keeps one materialized view consistent with a mutating base
/// graph.
///
/// Usage: materialize a view, construct a maintainer over base+view, then
/// report every base mutation: `OnEdgeAdded(e)` after appending edge `e`,
/// `OnEdgeRemoved(e)` after removing it, or `ApplyDelta(delta)` once
/// after applying a whole `GraphDelta` batch to the base graph. Supported
/// view kinds: k-hop connectors and the four type-filter summarizers.
/// `Unimplemented` is returned for other kinds (re-materialize instead).
///
/// Invariant (tested property): after any insert/delete sequence, the
/// maintained view graph has the same live edge multiset — including
/// "paths" multiplicities and `view_to_base` lineage — as
/// `Materialize(base, definition)` run from scratch.
class ViewMaintainer {
 public:
  /// \brief The base-graph position a view was materialized at: the
  /// watermarks a maintainer must start from to replay everything that
  /// happened *after* that position.
  ///
  /// The plain constructor assumes the view reflects the base graph *as
  /// it is now*. A view built in the background is published later, onto
  /// a base that may have moved on; capture `PinOf(base)` at build time
  /// and construct the replay maintainer with it so the catch-up starts
  /// at the pinned edge/vertex/removal counts rather than skipping the
  /// deltas that landed during the build.
  struct BasePin {
    graph::EdgeId num_edges = 0;
    graph::VertexId num_vertices = 0;
    size_t removed_edges = 0;
    size_t removed_vertices = 0;
  };

  /// Captures the current base-graph position.
  static BasePin PinOf(const graph::PropertyGraph& base);

  /// True for the view kinds this maintainer supports incrementally
  /// (k-hop connectors and the four type-filter summarizers). Other
  /// kinds must be re-materialized on base-graph change.
  static bool SupportsKind(ViewKind kind);

  /// Binds to a base graph and a view previously materialized from it.
  /// The maintainer indexes the current view; O(view size).
  ViewMaintainer(const graph::PropertyGraph* base, MaterializedView* view);

  /// As above for a view materialized when the base graph was at `pin`:
  /// the maintainer's watermarks start at the pinned position, so
  /// `ApplyDelta`/`CatchUp` replay exactly the mutations that landed
  /// after the pin.
  ViewMaintainer(const graph::PropertyGraph* base, MaterializedView* view,
                 const BasePin& pin);

  /// Applies the consequences of base edge `e` (which must already be in
  /// the base graph) to the view. Edges must be reported exactly once,
  /// in insertion order.
  Result<MaintenanceStats> OnEdgeAdded(graph::EdgeId e);

  /// Applies the consequences of removing base edge `e`. Call *after*
  /// `PropertyGraph::RemoveEdge(e)` — the dead edge's record stays
  /// readable, which is all the subtraction needs. Removing an edge the
  /// view never saw (id beyond the insertion watermark) is a no-op.
  Result<MaintenanceStats> OnEdgeRemoved(graph::EdgeId e);

  /// Batched entry point: call once after `delta` (already coalesced)
  /// has been applied to the base graph. Processes the removals in batch
  /// order, then catches up on the inserted edges; equivalent to the
  /// corresponding sequence of single-edge calls.
  Result<MaintenanceStats> ApplyDelta(const graph::GraphDelta& delta);

  /// Convenience: processes every base edge beyond the watermark the
  /// maintainer has seen (edge ids are dense and append-only). Fails
  /// with FailedPrecondition when edges were removed behind the
  /// maintainer's back (report removals via OnEdgeRemoved/ApplyDelta, or
  /// re-materialize).
  Result<MaintenanceStats> CatchUp();

  /// While set, every *view-graph* edge this maintainer tombstones is
  /// appended to `*sink` (view insertions need no log — view edge ids
  /// are append-only, so consumers discover them from id-space growth).
  /// The catalog records these as the view's CSR-snapshot delta trail,
  /// letting `SnapshotFor` patch the previous snapshot forward instead
  /// of rebuilding it. Null (the default) disables recording.
  void set_removed_edge_sink(std::vector<graph::EdgeId>* sink) {
    removed_sink_ = sink;
  }

 private:
  Result<MaintenanceStats> MaintainConnector(graph::EdgeId e);
  Result<MaintenanceStats> MaintainFilterSummarizer(graph::EdgeId e);
  Result<MaintenanceStats> RemoveFromConnector(
      graph::EdgeId e, const struct BatchRemovalScope* batch);
  Result<MaintenanceStats> RemoveFromFilterSummarizer(graph::EdgeId e);

  /// View vertex for a base vertex, creating it (with copied properties
  /// and orig_id) on first use.
  graph::VertexId ViewVertexFor(graph::VertexId base_vertex,
                                MaintenanceStats* stats);

  /// Upserts a connector edge (src, dst) with `paths` new contracted
  /// paths.
  Status UpsertConnectorEdge(graph::VertexId base_src,
                             graph::VertexId base_dst, uint64_t paths,
                             MaintenanceStats* stats);

  /// Subtracts `paths` contracted paths from connector edge (src, dst),
  /// dropping it at zero and collecting newly orphaned endpoints.
  Status DecrementConnectorEdge(graph::VertexId base_src,
                                graph::VertexId base_dst, uint64_t paths,
                                MaintenanceStats* stats);

  /// Drops the view vertex for `base_vertex` when no live view edge
  /// touches it (connectors only; summarizer vertices are kept by type).
  void MaybeCollectViewVertex(graph::VertexId base_vertex,
                              MaintenanceStats* stats);

  const graph::PropertyGraph* base_;
  MaterializedView* view_;
  graph::EdgeTypeId connector_type_ = graph::kInvalidTypeId;
  graph::VertexTypeId source_type_ = graph::kInvalidTypeId;
  graph::VertexTypeId target_type_ = graph::kInvalidTypeId;
  /// base vertex id -> view vertex id (live view vertices only).
  std::unordered_map<graph::VertexId, graph::VertexId> base_to_view_;
  /// (view src, view dst) -> view edge id (connector edges are unique per
  /// pair under deduplicated materialization).
  std::map<std::pair<graph::VertexId, graph::VertexId>, graph::EdgeId>
      connector_edges_;
  /// base edge id -> view edge id for filter summarizers (each kept base
  /// edge is copied verbatim; "orig_eid" lineage mirrors this map).
  std::unordered_map<graph::EdgeId, graph::EdgeId> summarizer_edges_;
  /// Edge types preserved by a filter summarizer.
  std::vector<bool> keep_edge_type_;
  std::vector<bool> keep_vertex_type_;
  /// When non-null, removed view-graph edge ids are appended here.
  std::vector<graph::EdgeId>* removed_sink_ = nullptr;
  /// First base edge id not yet processed.
  graph::EdgeId watermark_ = 0;
  /// First base vertex id not yet processed (summarizers copy kept
  /// vertices even when isolated).
  graph::VertexId vertex_watermark_ = 0;
  /// Base-graph removals this maintainer has accounted for; diverging
  /// from `base_->num_removed_edges()` / `num_removed_vertices()` means
  /// someone removed elements without telling us, and CatchUp refuses
  /// rather than serve stale views (vertex removal is always
  /// out-of-band: GraphDelta carries no vertex removals).
  size_t base_removals_seen_ = 0;
  size_t base_vertex_removals_seen_ = 0;
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_MAINTENANCE_H_
