#include "core/segment_store.h"

#include <utility>

namespace kaskade::core {

SegmentStore::SegmentStore(const graph::PropertyGraph* base, size_t shards)
    : base_(base) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  SyncShape();
}

void SegmentStore::SyncShape() {
  const size_t n = base_->NumVertices();
  const size_t num_segs = graph::CsrSegmentCount(n);
  if (num_segs != segments_.size()) {
    // New slots start dirty (null is also treated as dirty at refresh);
    // a shrink simply drops the tail slots.
    segments_.resize(num_segs);
    seg_dirty_.resize(num_segs, 1);
  }
  vertices_seen_ = n;
  edges_seen_ = base_->NumEdges();
}

void SegmentStore::NoteChanged() {
  SyncShape();
  for (auto& shard : shards_) {
    shard->rebuild_all.store(true, std::memory_order_relaxed);
    // Invalidate regardless of the dirty set: the next Snapshot must
    // not treat the shard as current for any already-stamped version.
    shard->version.store(kNeverRefreshed, std::memory_order_release);
  }
}

void SegmentStore::NoteDelta(const graph::DeltaFootprintPtr& delta) {
  if (delta == nullptr) {
    NoteChanged();
    return;
  }
  const size_t n = base_->NumVertices();
  if (n < vertices_seen_) {
    // Vertices never shrink under the delta protocol; treat anything
    // else as an out-of-band change.
    NoteChanged();
    return;
  }
  const size_t prev_vertices = vertices_seen_;
  const size_t prev_edges = edges_seen_;
  SyncShape();
  const size_t num_segs = seg_dirty_.size();
  auto mark = [&](graph::VertexId v) {
    const size_t s = graph::CsrSegmentOf(v);
    if (s < num_segs) seg_dirty_[s] = 1;
  };
  if (n != prev_vertices && (prev_vertices >> graph::kCsrSegmentShift) <
                                num_segs) {
    // The segment straddling the old vertex-count boundary changed
    // shape when vertices were appended.
    seg_dirty_[prev_vertices >> graph::kCsrSegmentShift] = 1;
  }
  // Removal endpoints: tombstoned records stay readable. Removals of
  // edges appended within this window are covered by the append scan.
  for (graph::EdgeId e : delta->edge_removals) {
    if (static_cast<size_t>(e) >= prev_edges) continue;
    const graph::EdgeRecord& rec = base_->Edge(e);
    mark(rec.source);
    mark(rec.target);
  }
  // Appended edges, discovered from id-space growth.
  const size_t now_edges = base_->NumEdges();
  for (size_t e = prev_edges; e < now_edges; ++e) {
    const graph::EdgeRecord& rec = base_->Edge(static_cast<graph::EdgeId>(e));
    mark(rec.source);
    mark(rec.target);
  }
}

std::vector<uint64_t> SegmentStore::writer_acquisitions() const {
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard->writer_acquisitions.load(std::memory_order_relaxed));
  }
  return out;
}

std::shared_ptr<const graph::CsrGraph> SegmentStore::Snapshot(
    uint64_t version, Outcome* outcome) const {
  Outcome local;
  Outcome& oc = outcome != nullptr ? *outcome : local;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_ != nullptr && cache_version_ == version) {
      oc = Outcome::kHit;
      return cache_;
    }
  }
  // Mutation is excluded for the duration of this call and every
  // concurrent caller passes the same (frozen) version, so the shape
  // read here is stable and a shard stamped `version` stays current.
  const size_t num_segs = segments_.size();
  const size_t k = shards_.size();
  uint64_t copied = 0;
  uint64_t shared = 0;
  for (size_t s = 0; s < k; ++s) {
    Shard& shard = *shards_[s];
    if (shard.version.load(std::memory_order_acquire) == version) continue;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.writer_acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (shard.version.load(std::memory_order_relaxed) == version) {
      continue;  // another reader refreshed it while we waited
    }
    const bool all = shard.rebuild_all.exchange(false,
                                                std::memory_order_relaxed);
    uint64_t shard_copied = 0;
    uint64_t shard_shared = 0;
    uint64_t bytes = 0;
    for (size_t seg = s; seg < num_segs; seg += k) {
      if (all || seg_dirty_[seg] != 0 || segments_[seg] == nullptr) {
        segments_[seg] = graph::CsrGraph::BuildSegment(*base_, seg);
        seg_dirty_[seg] = 0;
        ++shard_copied;
        bytes += segments_[seg]->ByteSize();
      } else {
        ++shard_shared;
      }
    }
    copied += shard_copied;
    shared += shard_shared;
    segments_copied_.fetch_add(shard_copied, std::memory_order_relaxed);
    segments_shared_.fetch_add(shard_shared, std::memory_order_relaxed);
    bytes_copied_.fetch_add(bytes, std::memory_order_relaxed);
    shard.version.store(version, std::memory_order_release);
  }
  // Every shard is stamped `version` (the acquire loads above order the
  // slot writes before the reads below), so the table is frozen:
  // assemble and publish. Concurrent callers may assemble duplicate
  // (identical) snapshots; the first to publish wins.
  std::vector<graph::CsrSegmentPtr> segs(segments_.begin(), segments_.end());
  auto built = std::make_shared<const graph::CsrGraph>(
      graph::CsrGraph::FromSegments(std::move(segs), base_->NumVertices(),
                                    static_cast<graph::EdgeId>(
                                        base_->NumEdges())));
  oc = (copied > 0 && shared == 0) ? Outcome::kFullBuild : Outcome::kPatch;
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_ != nullptr && cache_version_ == version) return cache_;
  cache_ = std::move(built);
  cache_version_ = version;
  return cache_;
}

}  // namespace kaskade::core
