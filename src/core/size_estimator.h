/// \file size_estimator.h
/// \brief Graph-view size estimation (§V-A).
///
/// The size of a k-hop connector equals the number of k-length simple
/// paths in the base graph. Three estimators are provided:
///
///  - Eq. (1): the Erdős–Rényi expectation
///        E(G,k) = C(n, k+1) * (m / C(n,2))^k,
///    which the paper shows underestimates real graphs by orders of
///    magnitude (kept as the ablation baseline);
///  - Eq. (2): homogeneous graphs,  E(G,k,a) = n * deg_a^k;
///  - Eq. (3): heterogeneous graphs,
///        E(G,k,a) = sum_t  n_t * deg_a(t)^k
///    over vertex types t that are the domain of at least one edge type.
///
/// alpha = 100 gives an upper bound; the paper (and Kaskade's default)
/// uses alpha = 95, with 50 <= alpha <= 95 bracketing the actual size on
/// power-law graphs.

#ifndef KASKADE_CORE_SIZE_ESTIMATOR_H_
#define KASKADE_CORE_SIZE_ESTIMATOR_H_

#include "graph/property_graph.h"
#include "graph/stats.h"
#include "core/view_definition.h"

namespace kaskade::core {

/// Eq. (1): expected k-length simple paths in G(n, m) under the
/// Erdős–Rényi model (computed in log space; safe for huge n).
double ErdosRenyiPathEstimate(size_t n, size_t m, int k);

/// Eq. (2): n * deg_alpha^k over the whole (homogeneous) graph.
double HomogeneousPathEstimate(const graph::GraphStats& stats, int k,
                               double alpha);

/// Eq. (3): per-source-type sum for heterogeneous graphs. Types that are
/// not the domain of any edge type contribute nothing.
double HeterogeneousPathEstimate(const graph::PropertyGraph& graph,
                                 const graph::GraphStats& stats, int k,
                                 double alpha);

/// Dispatches on schema homogeneity: Eq. (2) for one-vertex-type graphs,
/// Eq. (3) otherwise.
double EstimateKPathCount(const graph::PropertyGraph& graph,
                          const graph::GraphStats& stats, int k, double alpha);

/// Estimated edge count of a materialized view over `graph` (§V-A "View
/// size estimation"): path-count estimates for connectors; exact type
/// cardinalities for type-filter summarizers.
double EstimateViewSizeEdges(const graph::PropertyGraph& graph,
                             const graph::GraphStats& stats,
                             const ViewDefinition& view, double alpha);

}  // namespace kaskade::core

#endif  // KASKADE_CORE_SIZE_ESTIMATOR_H_
