/// \file planner.h
/// \brief `Planner`: plan enumeration and costing (the "query rewriter"
/// box of Fig. 2, §V-C), with a sharded LRU plan cache.
///
/// For a query, the planner considers the raw graph plus one single-view
/// rewriting per catalog entry (the paper's single-view-per-rewrite
/// restriction) and picks the cheapest by estimated evaluation cost.
///
/// Plan choice is cached per `(query text, catalog generation)` — the
/// paper amortizes constraint extraction and view inference over
/// repeated runs of the same query (§VII-A). Keying by the catalog's
/// monotonic generation makes invalidation implicit: after any catalog
/// or base-graph change the generation moves on and stale entries simply
/// never match again (they age out of the LRU). The cache is sharded and
/// mutex-striped so concurrent executors contend only per shard, not on
/// one global lock.

#ifndef KASKADE_CORE_PLANNER_H_
#define KASKADE_CORE_PLANNER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/catalog.h"
#include "graph/property_graph.h"
#include "query/ast.h"
#include "query/cost.h"

namespace kaskade::core {

/// \brief A chosen execution plan for one query.
struct Plan {
  std::string view_name;       ///< Empty = run on the raw graph.
  std::string executed_query;  ///< Rendered (possibly rewritten) text.
  /// Canonical (parsed-and-rendered) text of the *original* query — the
  /// workload tracker's aggregation key, shared by the textual and
  /// pre-parsed Execute overloads.
  std::string canonical_query;
  double estimated_cost = 0;
  /// Catalog generation the plan (and its cache entry) was computed
  /// against. Execution resolves the CSR topology snapshot for this
  /// exact generation — a plan never runs over a snapshot newer or
  /// older than the catalog state it was costed on.
  uint64_t planned_generation = 0;
  /// Canonical shape of the *executed* query when it is a bare MATCH:
  /// node names/types, edge topology/types/hop bounds, WHERE structure
  /// (variable, property, operator — the constants are lifted out), and
  /// RETURN items. Two plans with equal shape keys (and equal view /
  /// generation) differ at most in predicate constants, so the batch
  /// executor can run them as one fused traversal
  /// (query/fused_runner.h). Empty = not fusable (SELECT shell, parse
  /// shapes fusion does not cover).
  std::string shape_key;
  /// Parsed AST of `executed_query` when `shape_key` is set — what the
  /// fused runner consumes, saving a per-member re-parse. Shared (and
  /// immutable) so `Plan` stays cheaply copyable through the LRU cache.
  std::shared_ptr<const query::MatchQuery> match_ast;
};

/// \brief Planner configuration.
struct PlannerOptions {
  /// Cost-proxy options forwarded to `query::EstimateEvalCost`.
  query::CostModelOptions eval_cost;
  /// Target total cached plans; 0 disables caching. Enforced per shard
  /// as ceil(capacity / shards), so the live total can exceed this by
  /// up to shards-1 entries.
  size_t cache_capacity = 4096;
  /// Mutex stripes. Bounded lock contention under concurrent execution.
  size_t cache_shards = 8;
};

/// \brief Plan enumeration + costing with a generation-keyed plan cache.
///
/// Thread-safety: all methods are safe to call concurrently; cache
/// shards carry their own mutexes and telemetry counters are atomic.
/// The caller must prevent concurrent mutation of `base` and `catalog`
/// for the duration of a call (the Engine's reader lock does this).
class Planner {
 public:
  explicit Planner(PlannerOptions options = {});

  /// Uncached plan search: considers the raw graph and every catalog
  /// entry, returns the cheapest plan.
  Status ChoosePlan(const query::Query& query,
                    const graph::PropertyGraph& base,
                    const ViewCatalog& catalog, Plan* plan) const;

  /// Cached plan lookup keyed by `(query_text, catalog.generation())`;
  /// parses + plans on miss and inserts into the LRU.
  Result<Plan> PlanFor(const std::string& query_text,
                       const graph::PropertyGraph& base,
                       const ViewCatalog& catalog);

  /// Drops every cached plan (telemetry is preserved). Rarely needed —
  /// generation keying already invalidates — but useful for tests and
  /// for bounding memory after bursts.
  void ClearCache();

  /// \name Plan-cache telemetry (for tests and operations).
  /// @{
  size_t cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  size_t cache_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  size_t cache_size() const;
  /// @}

 private:
  struct CacheKey {
    std::string text;
    uint64_t generation = 0;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const {
      size_t h = std::hash<std::string>{}(key.text);
      return h ^ (std::hash<uint64_t>{}(key.generation) + 0x9e3779b97f4a7c15ULL +
                  (h << 6) + (h >> 2));
    }
  };
  /// One LRU stripe: most-recently-used at the front.
  struct Shard {
    std::mutex mu;
    std::list<std::pair<CacheKey, Plan>> lru;
    std::unordered_map<CacheKey, std::list<std::pair<CacheKey, Plan>>::iterator,
                       CacheKeyHash>
        index;
  };

  Shard& ShardFor(const CacheKey& key) const {
    return shards_[CacheKeyHash{}(key) % shards_.size()];
  }

  PlannerOptions options_;
  size_t per_shard_capacity_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<size_t> hits_{0};
  mutable std::atomic<size_t> misses_{0};
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_PLANNER_H_
