/// \file engine.h
/// \brief `Engine`: the end-to-end graph query optimization facade of
/// Fig. 2, composed from the first-class subsystems it coordinates —
/// `ViewCatalog` (registry of materialized views), `Planner` (plan
/// enumeration + costing + plan cache), and the query executor.
///
/// Typical use:
///
/// ```cpp
/// kaskade::core::Engine engine(std::move(graph));
/// engine.AnalyzeWorkload({q1_text, q2_text});      // select + materialize
/// auto result = engine.Execute(q1_text);           // rewrite + run
/// std::cout << result->table.ToString();
/// ```
///
/// Concurrency discipline: `Execute` and `ExecuteBatch` are *readers* —
/// any number may run concurrently. `AnalyzeWorkload`, `RefreshViews`,
/// `AddMaterializedView`, `RemoveView`, `ApplyDelta`, and
/// `MutateBaseGraph` are *writers* — each runs exclusively, via a
/// `std::shared_mutex`, so readers observe either the pre-delta or the
/// post-delta catalog generation, never a torn view. The planner's plan
/// cache is keyed by the catalog's generation counter, so every writer
/// implicitly invalidates cached plans.
///
/// MATCH execution runs over the catalog's CSR topology snapshots
/// (cached per `(handle, generation)`, rebuilt lazily after any
/// mutation); `options.executor.parallelism` additionally seed-
/// partitions each MATCH across worker threads with output identical to
/// the sequential run.
///
/// `ExecuteBatch` fans a batch of queries across a small worker pool and
/// returns per-query results in input order; results are identical to
/// calling `Execute` sequentially.

#ifndef KASKADE_CORE_ENGINE_H_
#define KASKADE_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/catalog.h"
#include "core/planner.h"
#include "core/view_selector.h"
#include "graph/delta.h"
#include "graph/property_graph.h"
#include "query/executor.h"
#include "query/table.h"

namespace kaskade::core {

/// \brief Engine configuration.
struct EngineOptions {
  SelectorOptions selector;
  query::ExecutorOptions executor;
  /// Plan-cache sizing; `planner.eval_cost` is overridden by
  /// `selector.cost.eval` so plan choice and view selection always cost
  /// queries identically.
  PlannerOptions planner;
  /// Worker threads for `ExecuteBatch`; 0 = hardware concurrency.
  size_t batch_workers = 4;
};

/// \brief Outcome of one `ApplyDelta` batch.
struct DeltaReport {
  size_t vertices_inserted = 0;
  size_t edges_inserted = 0;
  size_t edges_removed = 0;
  /// Duplicate removals dropped while coalescing the batch.
  size_t removals_coalesced = 0;
  /// Ids the base graph allocated for the batch's inserts.
  std::vector<graph::VertexId> new_vertices;
  std::vector<graph::EdgeId> new_edges;
  /// How each registered view absorbed the delta.
  size_t views_incremental = 0;
  size_t views_rematerialized = 0;
  MaintenanceStats maintenance;
};

/// \brief Outcome of executing a query, with plan provenance.
struct ExecutionResult {
  query::Table table;
  bool used_view = false;
  std::string view_name;       ///< Set when used_view.
  std::string executed_query;  ///< The (possibly rewritten) query text.
  double estimated_cost = 0;
};

/// \brief The framework facade. See file comment for the concurrency
/// contract.
class Engine {
 public:
  explicit Engine(graph::PropertyGraph base_graph, EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const graph::PropertyGraph& base_graph() const { return base_; }
  const ViewCatalog& catalog() const { return catalog_; }
  const Planner& planner() const { return planner_; }

  /// Workload analyzer (§V-B): selects views for the workload under the
  /// space budget and materializes them. Writer.
  Result<SelectionReport> AnalyzeWorkload(
      const std::vector<std::string>& query_texts);

  /// Materializes one view directly (bypasses selection). Writer.
  Status AddMaterializedView(const ViewDefinition& definition);

  /// Drops a materialized view by name. Writer.
  Status RemoveView(const std::string& name);

  /// Brings every materialized view up to date with the base graph:
  /// incrementally where the view kind supports it, by
  /// re-materialization otherwise. Writer.
  Status RefreshViews();

  /// Applies one mutation batch — vertex/edge inserts plus edge
  /// removals — to the base graph under the writer lock, then routes the
  /// delta to every registered view (incrementally where the maintainer
  /// and cost model allow, re-materializing otherwise). The catalog
  /// generation is bumped exactly once per batch, so cached plans are
  /// invalidated once, not per edge. Views are exact when this returns;
  /// no `RefreshViews` needed. Writer.
  Result<DeltaReport> ApplyDelta(graph::GraphDelta delta);

  /// Escape hatch: applies an arbitrary `mutation` to the base graph
  /// under the writer lock and bumps the catalog generation
  /// (invalidating cached plans). Call `RefreshViews` afterwards; for
  /// appended edges the views catch up incrementally, while mutations
  /// that *remove* edges force the affected views to re-materialize
  /// (`ApplyDelta` is the efficient path for deletions). Writer.
  Status MutateBaseGraph(
      const std::function<Status(graph::PropertyGraph*)>& mutation);

  /// Query rewriter + execution (§V-C): evaluates `query_text` via the
  /// cheapest available plan (raw graph or one materialized view),
  /// consulting the planner's generation-keyed plan cache. Reader.
  Result<ExecutionResult> Execute(const std::string& query_text);

  /// As above for a pre-parsed query; bypasses the plan cache (there is
  /// no canonical text key). Reader.
  Result<ExecutionResult> Execute(const query::Query& query);

  /// Executes a batch of queries across `batch_workers` threads and
  /// returns results in input order, identical to sequential `Execute`.
  /// Reader (all workers share the read lock).
  std::vector<Result<ExecutionResult>> ExecuteBatch(
      const std::vector<std::string>& query_texts);

  /// \name Plan-cache telemetry, forwarded from the planner.
  /// @{
  size_t plan_cache_hits() const { return planner_.cache_hits(); }
  size_t plan_cache_misses() const { return planner_.cache_misses(); }
  /// @}

 private:
  /// Executes a previously chosen plan. Caller holds (at least) the
  /// reader lock.
  Result<ExecutionResult> RunPlan(const Plan& plan) const;

  /// Plan + run one query text. Caller holds the reader lock.
  Result<ExecutionResult> ExecuteUnderLock(const std::string& query_text);

  graph::PropertyGraph base_;
  EngineOptions options_;
  ViewCatalog catalog_;
  Planner planner_;
  /// Readers: Execute/ExecuteBatch. Writers: everything that mutates
  /// the catalog or the base graph.
  mutable std::shared_mutex mu_;
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_ENGINE_H_
