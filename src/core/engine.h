/// \file engine.h
/// \brief `Engine`: the end-to-end graph query optimization facade of
/// Fig. 2, composed from the first-class subsystems it coordinates —
/// `ViewCatalog` (registry of materialized views), `Planner` (plan
/// enumeration + costing + plan cache), `WorkloadTracker` (observed
/// workload telemetry), `Advisor` (online view advice), and the query
/// executor.
///
/// Typical use:
///
/// ```cpp
/// kaskade::core::Engine engine(std::move(graph));
/// engine.AnalyzeWorkload({q1_text, q2_text});      // select + materialize
/// auto result = engine.Execute(q1_text);           // rewrite + run
/// std::cout << result->table.ToString();
///
/// // ... after serving traffic for a while (the tracker observed it):
/// auto plan = engine.Advise();          // create/drop advice
/// engine.ApplyAdvice(*plan);            // drops now, builds in background
/// ```
///
/// Concurrency discipline: `Execute` and `ExecuteBatch` are *readers* —
/// any number may run concurrently. `AnalyzeWorkload`, `RefreshViews`,
/// `AddMaterializedView`, `RemoveView`, `ApplyDelta`, `ApplyAdvice`
/// (the drop/schedule step), and `MutateBaseGraph` are *writers* — each
/// runs exclusively, via a `std::shared_mutex`, so readers observe
/// either the pre-delta or the post-delta catalog generation, never a
/// torn view. The planner's plan cache is keyed by the catalog's
/// generation counter, so every writer implicitly invalidates cached
/// plans.
///
/// View materializations scheduled by `ApplyAdvice` do **not** run under
/// the writer lock: a background worker pins the base under a brief
/// reader lock (one O(|V|+|E|) graph copy), materializes against the
/// pinned copy with *no engine lock held at all* — readers and writers
/// both keep flowing — then takes one short writer critical section to
/// publish, replaying any `ApplyDelta` batches that landed during the
/// build through the incremental-maintenance path, or re-materializing
/// when the cost model prefers it. The planner only ever sees `kReady`
/// views, so a half-built view is never planned against.
///
/// MATCH execution runs over the catalog's CSR topology snapshots
/// (cached per `(handle, generation)`, rebuilt lazily after any
/// mutation); `options.executor.parallelism` additionally seed-
/// partitions each MATCH across worker threads with output identical to
/// the sequential run.
///
/// `ExecuteBatch` fans a batch of queries across a small persistent
/// worker pool (started lazily on the first multi-task batch, drained on
/// shutdown — no per-call thread churn) and returns per-query results in
/// input order; results are identical to calling `Execute` sequentially.
/// Before execution the batch is grouped by *plan shape*: queries whose
/// chosen plans share a canonical MATCH shape (`Plan::shape_key` —
/// identical topology, types, plan order, and WHERE structure; only
/// predicate constants differ) and target (same view, same generation)
/// run as one fused traversal (`query/fused_runner.h`) that pays the
/// shared seed/expansion work once for the whole group.
/// `ExecutorOptions::fusion` gates this; singletons and non-MATCH
/// queries keep the solo path. Fused output is byte-identical to the
/// solo run, per query.

#ifndef KASKADE_CORE_ENGINE_H_
#define KASKADE_CORE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/advisor.h"
#include "core/catalog.h"
#include "core/fault.h"
#include "core/planner.h"
#include "core/view_selector.h"
#include "core/workload_tracker.h"
#include "durability/wal.h"
#include "graph/delta.h"
#include "graph/property_graph.h"
#include "query/executor.h"
#include "query/table.h"

namespace kaskade::core {

/// \brief Instrumentation points on the background build path (used by
/// the concurrency tests to make inherently-racy windows deterministic).
struct BuildHooks {
  /// Runs on the builder thread while it holds the *reader* lock,
  /// immediately before the pinned base-graph copy is taken. Readers
  /// provably progress while this blocks; taking the writer lock from
  /// here deadlocks.
  std::function<void()> during_build;
  /// Runs on the builder thread with no engine lock held, after the
  /// build finished and before the publish critical section. Mutations
  /// applied from here land "during the build" and exercise the
  /// pending-delta replay (or rebuild) path.
  std::function<void()> before_publish;
};

/// \brief Durability configuration. With `dir` set, every `ApplyDelta` /
/// `MutateBaseGraph` is written to a checksummed write-ahead log before
/// it is acknowledged (per `fsync_policy`), checkpoints bound recovery
/// time, and `Engine::Open` reconstructs the engine — base graph plus
/// re-materialized views — after a crash.
struct DurabilityOptions {
  /// Directory for WAL segments and checkpoints. Empty (default) keeps
  /// the engine volatile — no logging, no recovery.
  std::string dir;
  /// When an acknowledged mutation is guaranteed on disk. `kEveryWrite`
  /// loses zero acknowledged mutations on a crash; `kBatch` (group
  /// commit) loses at most the mutations of one unflushed batch; `kNone`
  /// leaves flushing to the OS.
  durability::FsyncPolicy fsync_policy = durability::FsyncPolicy::kBatch;
  /// Group-commit flush cadence (bounds how long a `kBatch` writer
  /// waits for its fsync).
  std::chrono::milliseconds flush_interval{2};
  /// WAL segment rotation threshold.
  uint64_t wal_segment_bytes = 64ull << 20;
  /// Background checkpoint trigger: once this many WAL bytes accumulate
  /// since the last checkpoint, the checkpointer snapshots the base
  /// graph and truncates the log below it. 0 disables the background
  /// checkpointer (manual `Checkpoint()` still works).
  uint64_t checkpoint_wal_bytes = 16ull << 20;

  bool enabled() const { return !dir.empty(); }
};

/// \brief Opt-in self-healing of quarantined views: a background worker
/// re-materializes `kQuarantined` catalog entries with capped
/// exponential backoff, returning them to service without operator
/// intervention. Off by default — quarantine is deliberately sticky so
/// a persistent fault cannot hide behind silent rebuild loops.
struct SelfHealOptions {
  bool enabled = false;
  /// First retry delay after a view is quarantined; doubles per failed
  /// attempt up to `max_backoff`.
  std::chrono::milliseconds initial_backoff{1};
  std::chrono::milliseconds max_backoff{1000};
  /// Attempts before the worker gives up on a view (it stays
  /// quarantined for manual reclaim). 0 = retry forever.
  size_t max_attempts = 8;
};

/// \brief What `Engine::Open` found and did while recovering.
struct RecoveryReport {
  /// LSN of the checkpoint recovery started from.
  uint64_t checkpoint_lsn = 0;
  /// WAL records replayed on top of the checkpoint.
  uint64_t records_replayed = 0;
  /// Highest LSN in the recovered state (checkpoint or replayed).
  uint64_t last_lsn = 0;
  /// Views re-materialized from their persisted definitions.
  size_t views_rematerialized = 0;
  /// Bytes removed from a torn/corrupt WAL tail.
  uint64_t truncated_bytes = 0;
  /// Data-loss notes: the torn-tail description and any corrupt
  /// checkpoint files skipped. Empty = clean recovery.
  std::vector<std::string> notes;
};

/// \brief Engine configuration.
struct EngineOptions {
  SelectorOptions selector;
  query::ExecutorOptions executor;
  /// Plan-cache sizing; `planner.eval_cost` is overridden by
  /// `selector.cost.eval` so plan choice and view selection always cost
  /// queries identically.
  PlannerOptions planner;
  /// Advisor knobs; `advisor.selector` is overridden by `selector` so
  /// offline analysis, online advice, and plan choice share one budget
  /// and cost model.
  AdvisorOptions advisor;
  /// Incremental CSR snapshot production (forwarded to the catalog):
  /// after `ApplyDelta`, the next query patches the previous topology
  /// snapshot forward in O(|delta|) instead of rebuilding it in
  /// O(|V| + |E|). `max_dirty_fraction = 0` disables patching.
  graph::CsrPatchOptions snapshot_patch;
  /// Shard count for the base graph's snapshot pipeline and the MATCH
  /// scatter-gather layer. Vertices hash-partition across shards on
  /// immutable-segment boundaries (`graph::ShardOfVertex`); with
  /// `shards >= 2` each shard owns its own snapshot/patch pipeline and
  /// writer lock (core/segment_store.h), so concurrent snapshot
  /// refreshes touching disjoint shards no longer serialize, and the
  /// CSR MATCH backends scatter seeds across shards and gather results
  /// byte-identically to the unsharded table (row order included;
  /// forwarded to `executor.shards`). 1 (default) keeps today's
  /// single-slot behavior byte-identical.
  size_t shards = 1;
  /// Worker threads for `ExecuteBatch`; 0 = hardware concurrency.
  size_t batch_workers = 4;
  /// Background view-build workers (started lazily on first
  /// `ApplyAdvice` with creations).
  size_t build_workers = 1;
  /// Opt-in self-tuning trigger: when non-zero, the engine runs one
  /// `AutoAdvise` round after every N successful query executions
  /// (tracker-recorded), so deployments adapt without an external
  /// advice loop. The round runs on the query thread that crossed the
  /// threshold, after it released the reader lock; at most one thread
  /// wins each threshold crossing. 0 disables the trigger.
  size_t auto_advise_every_n_ops = 0;
  /// Exponential decay applied to the workload tracker after each
  /// `AutoAdvise` round (triggered or manual): every observation's
  /// counts and latency/cost aggregates are scaled by this factor, so
  /// advice follows workload shifts — a query that stops arriving loses
  /// its weight round over round and its view eventually becomes a drop
  /// candidate, while entries decayed to zero executions are evicted
  /// (freeing stripe capacity for new hot texts). 1.0 (default)
  /// disables decay; must be in [0, 1].
  double workload_decay = 1.0;
  BuildHooks build_hooks;
  /// Default per-query evaluation deadline applied by `Execute` /
  /// `ExecuteBatch` when the call passes none (`CallOptions::deadline`
  /// unset). Measured from call entry. Zero (default) disables — a
  /// query then runs to completion however long it takes. Expiry
  /// surfaces as `kDeadlineExceeded`; see
  /// `query::ExecutorOptions::deadline` for the cancellation contract.
  std::chrono::microseconds default_query_deadline{0};
  /// Admission gate: maximum Execute/ExecuteBatch calls admitted at
  /// once (one ExecuteBatch counts as one unit regardless of batch
  /// size). 0 (default) disables the gate. Arrivals past the limit wait
  /// up to `admission_wait_budget` for a slot, then are shed with
  /// `kUnavailable` — the load-shedding backstop that keeps in-deadline
  /// latency bounded when offered load exceeds capacity.
  size_t max_concurrent_queries = 0;
  /// How long an arrival may wait for an admission slot before being
  /// shed. Zero = shed immediately whenever the gate is full.
  std::chrono::microseconds admission_wait_budget{0};
  /// Fault injection (see core/fault.h): a hook here is fired at every
  /// named site — snapshot build, maintainer apply, materialize,
  /// publish, batch worker, WAL append/fsync, checkpoint write — and its
  /// failures exercise the graceful-degradation paths. Default-
  /// constructed (no hook) costs one branch per site.
  FaultHooks fault_hooks;
  /// Write-ahead logging, checkpoints, and crash recovery. Disabled by
  /// default (`dir` empty).
  DurabilityOptions durability;
  /// Background re-materialization of quarantined views. Off by
  /// default.
  SelfHealOptions self_heal;
};

/// \brief Per-call options for `Execute` / `ExecuteBatch`.
struct CallOptions {
  /// Absolute evaluation deadline for this call. The unset default
  /// means "apply `EngineOptions::default_query_deadline`"; an explicit
  /// value overrides it. For `ExecuteBatch` the deadline covers every
  /// member (they share the arrival time).
  std::chrono::steady_clock::time_point deadline{};
};

/// \brief Point-in-time copy of every cheap engine counter, for
/// monitors and the serving workload harness (which diffs two snapshots
/// around a traffic phase). All fields are gathered from atomics or
/// short internal critical sections — taking a snapshot never blocks
/// behind the engine's writer lock.
struct EngineTelemetry {
  uint64_t catalog_generation = 0;
  size_t views_ready = 0;
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
  size_t snapshot_hits = 0;
  size_t snapshot_patches = 0;
  size_t snapshot_full_builds = 0;
  size_t builds_completed = 0;
  size_t builds_replayed = 0;
  size_t build_retries = 0;
  size_t builds_pending = 0;
  size_t auto_advises = 0;
  size_t auto_advise_errors = 0;
  uint64_t queries_recorded = 0;
  size_t distinct_queries = 0;
  /// \name Batch cross-query fusion (ExecuteBatch shape groups).
  /// @{
  size_t fused_groups = 0;   ///< Shape groups run as one shared traversal.
  size_t fused_members = 0;  ///< Queries those groups served.
  /// CSR traversal expansions across all executions (solo + fused):
  /// candidate vertices enumerated at seed/expansion steps plus
  /// filter-edge probes. A fused group pays its expansions once where N
  /// solo runs pay them N times, so diffing this around a batch phase
  /// measures what fusion saved.
  uint64_t traversal_expansions = 0;
  /// @}
  /// \name Overload & degradation (deadlines, shedding, quarantine).
  /// @{
  /// Calls rejected by the admission gate with `kUnavailable`
  /// (ExecuteBatch rejections count one per member).
  size_t queries_shed = 0;
  /// Executions that failed with `kDeadlineExceeded`.
  size_t queries_timed_out = 0;
  /// Cooperative deadline clock tests performed inside MATCH
  /// evaluation (epoch-counted; see `ExecutionTiming::deadline_checks`).
  uint64_t deadline_checks = 0;
  /// Views currently out of service (`ViewState::kQuarantined`).
  size_t views_quarantined = 0;
  /// Quarantine transitions since engine construction (monotonic).
  size_t quarantine_events = 0;
  /// CSR snapshot productions failed by an injected fault; each one
  /// degraded that query to the legacy (non-CSR) backend.
  size_t snapshot_build_failures = 0;
  /// Batch-pool workers that abandoned a round via an injected fault
  /// (the calling thread drained the remaining tasks itself).
  size_t batch_worker_faults = 0;
  /// @}
  /// \name Segmented snapshot patching (immutable-segment CSR).
  /// @{
  /// Immutable CSR segments rebuilt across all snapshot productions
  /// (the cost a patch actually paid) vs shared by refcount with the
  /// previous generation (the cost it avoided). `patch_bytes_copied`
  /// tracking the delta size while shared segments track |V| is the
  /// O(delta) patching claim, observable in production.
  uint64_t patch_segments_copied = 0;
  uint64_t patch_segments_shared = 0;
  uint64_t patch_bytes_copied = 0;
  /// The dirty-fraction threshold the patch path currently runs with
  /// (auto-tuned upward from the configured floor; see
  /// `ViewCatalog::effective_max_dirty_fraction`).
  double effective_dirty_fraction = 0.0;
  /// Per-shard snapshot writer-lock acquisitions; empty when
  /// `EngineOptions::shards == 1`.
  std::vector<uint64_t> shard_writer_acquisitions;
  /// @}
  /// \name Durability (all zero for a volatile engine).
  /// @{
  uint64_t wal_appends = 0;         ///< Records written to the log.
  uint64_t wal_bytes = 0;           ///< Log bytes written (framing included).
  uint64_t wal_fsyncs = 0;          ///< fsync(2) calls the log issued.
  uint64_t group_commit_batches = 0;  ///< Group flushes that advanced durability.
  size_t checkpoints_written = 0;
  size_t checkpoint_failures = 0;
  /// @}
  /// \name Self-healing (quarantined-view repair worker).
  /// @{
  size_t quarantine_repairs = 0;  ///< Views returned to kReady by the worker.
  size_t repair_failures = 0;     ///< Repair attempts that failed.
  /// @}
};

/// \brief Outcome of one `ApplyDelta` batch.
struct DeltaReport {
  size_t vertices_inserted = 0;
  size_t edges_inserted = 0;
  size_t edges_removed = 0;
  /// Duplicate removals dropped while coalescing the batch.
  size_t removals_coalesced = 0;
  /// Ids the base graph allocated for the batch's inserts.
  std::vector<graph::VertexId> new_vertices;
  std::vector<graph::EdgeId> new_edges;
  /// How each registered view absorbed the delta.
  size_t views_incremental = 0;
  size_t views_rematerialized = 0;
  MaintenanceStats maintenance;
};

/// \brief Outcome of one `ApplyAdvice` call.
struct AdviceReport {
  size_t views_dropped = 0;
  /// Builds handed to the background pool (await with `WaitForBuilds`).
  size_t builds_scheduled = 0;
  /// Catalog handles of the scheduled builds, so a caller can collect
  /// exactly *its* builds' outcomes.
  std::vector<ViewHandle> scheduled_handles;
};

/// \brief Outcome of executing a query, with plan provenance.
struct ExecutionResult {
  query::Table table;
  bool used_view = false;
  std::string view_name;       ///< Set when used_view.
  std::string executed_query;  ///< The (possibly rewritten) query text.
  double estimated_cost = 0;
  /// Measured evaluation wall clock (microseconds) — what the workload
  /// tracker records. For a fused batch member this is the group's wall
  /// clock split evenly across members.
  double latency_us = 0;
  /// CSR traversal expansions this execution performed (0 for the
  /// legacy backend); a fused member reports its group's shared count.
  uint64_t expansions = 0;
  /// True when this result came from a fused batch shape group rather
  /// than a solo run. The table itself is identical either way.
  bool fused = false;
};

/// \brief The framework facade. See file comment for the concurrency
/// contract.
class Engine {
 public:
  /// Constructs the engine over `base_graph`. With
  /// `options.durability.dir` set, the directory is (re-)initialized as
  /// this engine's durable state: an initial checkpoint of `base_graph`
  /// is written and the WAL opened after it. Durable-state
  /// initialization failures are sticky (`durability_error()`), and
  /// every subsequent mutation returns them — the engine never silently
  /// runs volatile when durability was requested.
  explicit Engine(graph::PropertyGraph base_graph, EngineOptions options = {});

  /// Recovers an engine from existing durable state in `dir`: loads the
  /// newest valid checkpoint, replays the WAL tail in LSN order
  /// (truncating a torn/corrupt tail rather than propagating garbage),
  /// and re-materializes every persisted view definition. Fails with
  /// `kNotFound` when `dir` holds no checkpoint (construct a fresh
  /// engine instead) and `kDataLoss` when durable state exists but
  /// nothing valid can be loaded. `report` (optional) receives what
  /// recovery found, including data-loss notes.
  static Result<std::unique_ptr<Engine>> Open(const std::string& dir,
                                              EngineOptions options = {},
                                              RecoveryReport* report = nullptr);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Joins the background build pool (queued builds are aborted; the
  /// in-flight one finishes first) and the persistent batch pool.
  ~Engine();

  const graph::PropertyGraph& base_graph() const { return base_; }
  /// Catalog introspection. Entry *contents* reached through it are
  /// mutated by writers and by asynchronous background publishes:
  /// dereference entries only while no builds are pending
  /// (`WaitForBuilds`) or from the thread that schedules all writers.
  const ViewCatalog& catalog() const { return catalog_; }
  const Planner& planner() const { return planner_; }
  const WorkloadTracker& workload() const { return tracker_; }

  /// Drops all tracked observations (the lifetime `total_recorded`
  /// counter survives). Observations otherwise accumulate forever, so
  /// an epoch-based deployment calls this after each advice round —
  /// advice then follows what ran *since the last round*, letting the
  /// advisor notice (and eventually drop views for) queries that
  /// stopped arriving. Safe to call concurrently with readers.
  void ResetWorkload() { tracker_.Clear(); }

  /// Workload analyzer (§V-B): selects views for the workload under the
  /// space budget and materializes them. Runs on the advisor path
  /// (creations only — the offline analyzer never drops); blocks until
  /// every scheduled build has published, so views are queryable on
  /// return. Writer (briefly, per drop/schedule and per publish).
  Result<SelectionReport> AnalyzeWorkload(
      const std::vector<std::string>& query_texts);

  /// \name Online advice (adaptive view lifecycle).
  /// @{

  /// Runs the enumerate → score → knapsack pipeline against the
  /// *observed* workload (the tracker's snapshot) and the current
  /// catalog: proposes creations the budget justifies and drops for
  /// materialized views no observed query can use. Does not change
  /// anything. Reader.
  Result<AdvicePlan> Advise();

  /// Carries an advice plan out: drops immediately (short writer
  /// section), schedules each creation on the background build pool and
  /// returns without waiting. Re-applying an already-applied plan is a
  /// no-op (AlreadyExists builds and NotFound drops are skipped).
  Result<AdviceReport> ApplyAdvice(const AdvicePlan& plan);

  /// `Advise` + `ApplyAdvice` in one call — the self-tuning loop a
  /// deployment invokes periodically (or lets
  /// `EngineOptions::auto_advise_every_n_ops` invoke for it). When
  /// `EngineOptions::workload_decay < 1`, the tracker is decayed after
  /// the round so stale observations lose weight epoch over epoch.
  Result<AdviceReport> AutoAdvise();

  /// \name Auto-advise trigger telemetry.
  /// @{
  /// Rounds fired by the `auto_advise_every_n_ops` trigger.
  size_t auto_advises_triggered() const {
    return auto_advises_.load(std::memory_order_relaxed);
  }
  /// Triggered rounds that returned an error (counted, never thrown
  /// onto the query path that happened to cross the threshold).
  size_t auto_advise_errors() const {
    return auto_advise_errors_.load(std::memory_order_relaxed);
  }
  /// @}

  /// One consistent-enough snapshot of every cheap counter (each field
  /// individually atomic; no cross-field atomicity). Safe to call
  /// concurrently with readers, writers, and background builds.
  EngineTelemetry TelemetrySnapshot() const;

  /// Blocks until the background build queue is empty and no build is
  /// in flight.
  void WaitForBuilds();

  /// Bounded overload: waits up to `timeout` for the build pool to go
  /// idle. Returns OK when it did, `kDeadlineExceeded` when builds were
  /// still queued or running at expiry (the builds themselves keep
  /// going — only the wait gives up).
  Status WaitForBuilds(std::chrono::microseconds timeout);

  /// Queued + running background builds (telemetry).
  size_t builds_pending() const;

  /// Removes and returns the oldest recorded background-build failure,
  /// OK when none (call repeatedly to drain). Failures belonging to a
  /// blocking round that reserved them (`AnalyzeWorkload` in flight)
  /// are skipped, never stolen. Builds that fail *quarantine* their
  /// catalog entry: the name stays reserved with the failure recorded
  /// in `CatalogEntry::health`, queries fall back to the base graph,
  /// and a later advice round (or `AddMaterializedView`) reclaims the
  /// entry by rebuilding it.
  Status TakeBuildError();

  /// \name Background-build telemetry.
  /// @{
  /// Builds published (clean, replayed, or rebuilt).
  size_t builds_completed() const {
    return builds_completed_.load(std::memory_order_relaxed);
  }
  /// Builds that caught up on mid-build `ApplyDelta` batches through the
  /// incremental-maintenance replay before publishing.
  size_t builds_replayed() const {
    return builds_replayed_.load(std::memory_order_relaxed);
  }
  /// Extra materialization attempts after losing the publish race to a
  /// non-replayable base change.
  size_t build_retries() const {
    return build_retries_.load(std::memory_order_relaxed);
  }
  /// @}
  /// @}

  /// Materializes one view directly (bypasses selection). Writer for
  /// the whole build — `ApplyAdvice` is the non-blocking path.
  Status AddMaterializedView(const ViewDefinition& definition);

  /// Drops a materialized view by name. Writer.
  Status RemoveView(const std::string& name);

  /// Brings every materialized view up to date with the base graph:
  /// incrementally where the view kind supports it, by
  /// re-materialization otherwise. Writer.
  Status RefreshViews();

  /// Applies one mutation batch — vertex/edge inserts plus edge
  /// removals — to the base graph under the writer lock, then routes the
  /// delta to every registered view (incrementally where the maintainer
  /// and cost model allow, re-materializing otherwise). The catalog
  /// generation is bumped exactly once per batch, so cached plans are
  /// invalidated once, not per edge. Views are exact when this returns;
  /// no `RefreshViews` needed. While background builds are in flight the
  /// batch is also logged so just-built views can replay it at publish
  /// time. Writer.
  Result<DeltaReport> ApplyDelta(graph::GraphDelta delta);

  /// Escape hatch: applies an arbitrary `mutation` to the base graph
  /// under the writer lock and bumps the catalog generation
  /// (invalidating cached plans). Call `RefreshViews` afterwards; for
  /// appended edges the views catch up incrementally, while mutations
  /// that *remove* edges force the affected views to re-materialize
  /// (`ApplyDelta` is the efficient path for deletions). In-flight
  /// background builds cannot replay an arbitrary mutation and will
  /// re-materialize before publishing. Writer.
  Status MutateBaseGraph(
      const std::function<Status(graph::PropertyGraph*)>& mutation);

  /// Query rewriter + execution (§V-C): evaluates `query_text` via the
  /// cheapest available plan (raw graph or one materialized view),
  /// consulting the planner's generation-keyed plan cache. Successful
  /// executions are recorded with the workload tracker under the
  /// query's canonical text. Subject to the admission gate (rejections
  /// return `kUnavailable` without touching the graph) and to the
  /// effective deadline (`call.deadline`, else
  /// `default_query_deadline`), which fails the execution with
  /// `kDeadlineExceeded`. Reader.
  Result<ExecutionResult> Execute(const std::string& query_text,
                                  const CallOptions& call);
  Result<ExecutionResult> Execute(const std::string& query_text) {
    return Execute(query_text, CallOptions{});
  }

  /// As above for a pre-parsed query: the query is rendered to its
  /// canonical text so both overloads share one plan-cache path and one
  /// tracker entry. Reader.
  Result<ExecutionResult> Execute(const query::Query& query,
                                  const CallOptions& call = {});

  /// Executes a batch of queries and returns results in input order,
  /// identical to sequential `Execute`. The batch is planned up front,
  /// grouped by plan shape (same-shape groups of at least
  /// `ExecutorOptions::fusion.min_group_size` run as one fused
  /// traversal; everything else runs solo), and the resulting tasks are
  /// spread across the persistent batch pool (`batch_workers` wide) with
  /// the calling thread participating. Reader — the caller holds the
  /// shared lock for the whole batch; pool workers run under its hold.
  /// The batch is one admission unit: a gate rejection fills every slot
  /// with `kUnavailable`. The effective deadline covers every member;
  /// members that miss it fail individually with `kDeadlineExceeded`
  /// (never a torn table) while finished members keep their results.
  std::vector<Result<ExecutionResult>> ExecuteBatch(
      const std::vector<std::string>& query_texts,
      const CallOptions& call = {});

  /// \name Plan-cache telemetry, forwarded from the planner.
  /// @{
  size_t plan_cache_hits() const { return planner_.cache_hits(); }
  size_t plan_cache_misses() const { return planner_.cache_misses(); }
  /// @}

  /// \name Batch-fusion telemetry.
  /// @{
  /// Shape groups `ExecuteBatch` ran as one shared traversal.
  size_t fused_groups() const {
    return fused_groups_.load(std::memory_order_relaxed);
  }
  /// Batch queries served by those groups.
  size_t fused_members() const {
    return fused_members_.load(std::memory_order_relaxed);
  }
  /// CSR traversal expansions across all executions (solo and fused).
  uint64_t traversal_expansions() const {
    return traversal_expansions_.load(std::memory_order_relaxed);
  }
  /// @}

  /// \name Overload telemetry.
  /// @{
  /// Calls the admission gate rejected with `kUnavailable`.
  size_t queries_shed() const {
    return queries_shed_.load(std::memory_order_relaxed);
  }
  /// Executions that failed with `kDeadlineExceeded`.
  size_t queries_timed_out() const {
    return queries_timed_out_.load(std::memory_order_relaxed);
  }
  /// Cooperative deadline clock tests inside MATCH evaluation.
  uint64_t deadline_checks() const {
    return deadline_checks_.load(std::memory_order_relaxed);
  }
  /// @}

  /// Threads currently in the persistent batch pool (telemetry; the
  /// pool starts lazily and persists across batches).
  size_t batch_pool_size() const;

  /// \name Durability.
  /// @{

  /// Writes a checkpoint of the current base graph and view definitions
  /// (consistent as of one LSN, taken under the reader lock), then
  /// truncates WAL segments the checkpoint made redundant. Returns the
  /// checkpoint's LSN. Error when durability is disabled.
  Result<uint64_t> Checkpoint();

  /// The sticky durable-state initialization/IO error (OK when
  /// durability is healthy or disabled).
  Status durability_error() const;

  /// The live WAL, for telemetry and crash harnesses (null when
  /// durability is disabled).
  const durability::WriteAheadLog* wal() const { return wal_.get(); }

  size_t checkpoints_written() const {
    return checkpoints_written_.load(std::memory_order_relaxed);
  }
  /// @}

  /// \name Self-healing telemetry.
  /// @{
  /// Quarantined views the repair worker returned to service.
  size_t quarantine_repairs() const {
    return quarantine_repairs_.load(std::memory_order_relaxed);
  }
  /// Failed repair attempts.
  size_t repair_failures() const {
    return repair_failures_.load(std::memory_order_relaxed);
  }
  /// @}

 private:
  /// Durable-state positions handed from `Open` to the recovering
  /// constructor, so it resumes the recovered log instead of
  /// re-initializing the directory.
  struct DurableBootstrap {
    uint64_t next_lsn = 1;
    uint64_t checkpoint_lsn = 0;
  };

  Engine(graph::PropertyGraph base_graph, EngineOptions options,
         std::optional<DurableBootstrap> bootstrap);
  /// One scheduled background materialization.
  struct BuildJob {
    ViewHandle handle = kInvalidViewHandle;
    ViewDefinition definition;
  };

  /// One `ApplyDelta` batch retained while builds are in flight, so a
  /// build pinned before it can replay it at publish time. Holds the
  /// *same* immutable footprint (removal ids + insert counts — insert
  /// payloads are never pinned) the catalog's snapshot delta trail
  /// holds: one allocation per applied batch, however many consumers
  /// log it (previously each entry copied the batch's full removal
  /// list).
  struct PendingDelta {
    /// `base_version_` immediately after the batch applied.
    uint64_t base_version = 0;
    graph::DeltaFootprintPtr delta;
  };

  /// One `ExecuteBatch` call's work queue: independent tasks (fused
  /// groups and singletons) claimed by pool workers and the calling
  /// thread alike. Lives on the queue as a shared_ptr so a worker can
  /// outlast the caller's erase.
  struct BatchJob {
    std::vector<std::function<void()>> tasks;
    std::atomic<size_t> next{0};  ///< Next unclaimed task index.
    std::atomic<size_t> done{0};  ///< Completed tasks.
  };

  /// Executes a previously chosen plan under `deadline` (time_point{} =
  /// none). Caller holds (at least) the reader lock.
  Result<ExecutionResult> RunPlan(
      const Plan& plan, std::chrono::steady_clock::time_point deadline) const;

  /// Runs an already-planned query solo and records the observation on
  /// success. Caller (or the `ExecuteBatch` invocation that spawned this
  /// task) holds the reader lock.
  Result<ExecutionResult> ExecutePlannedLocked(
      const Plan& plan, std::chrono::steady_clock::time_point deadline);

  /// Plan + run one query text, recording the observation on success.
  /// Caller holds the reader lock.
  Result<ExecutionResult> ExecuteUnderLock(
      const std::string& query_text,
      std::chrono::steady_clock::time_point deadline);

  /// Runs one fused shape group (all plans share `shape_key`, view and
  /// generation) and fills each member's slot; falls back to solo
  /// execution when no CSR snapshot is attachable. Reader lock held by
  /// the owning `ExecuteBatch` caller.
  void RunFusedGroupLocked(
      const std::vector<std::optional<Plan>>& plans,
      const std::vector<size_t>& indices,
      std::chrono::steady_clock::time_point deadline,
      std::vector<std::optional<Result<ExecutionResult>>>* slots);

  /// Resolves the call's effective deadline: explicit per-call value,
  /// else entry time + `default_query_deadline`, else none.
  std::chrono::steady_clock::time_point EffectiveDeadline(
      const CallOptions& call) const;

  /// Admission gate: claims an in-flight slot, waiting up to
  /// `admission_wait_budget` when the gate is full. `kUnavailable` on
  /// shed; always OK when the gate is disabled. Every OK claim must be
  /// paired with `ReleaseQuery`.
  Status AdmitQuery();
  void ReleaseQuery();

  /// Spreads `tasks` across the persistent batch pool and the calling
  /// thread; returns when all tasks ran. Starts pool threads lazily (at
  /// most `batch_workers - 1`: the caller is always one worker). The
  /// caller must hold the reader lock — pool workers take no engine
  /// lock and run under the caller's hold.
  void RunBatchTasks(std::vector<std::function<void()>> tasks);

  /// Batch-pool worker: claims tasks from queued jobs until stopped.
  void BatchWorkerLoop();

  /// Claims and runs `job`'s tasks until none remain; notifies
  /// `batch_done_cv_` when the last task of the job completes.
  void DrainBatchJob(BatchJob* job);

  /// Fires one `AutoAdvise` round when the recorded-execution count
  /// crossed the `auto_advise_every_n_ops` threshold. MUST be called
  /// with no engine lock held (the round takes both lock modes); at
  /// most one caller wins each crossing via CAS on
  /// `next_auto_advise_at_`.
  void MaybeAutoAdvise();

  /// Caller holds the writer lock. Notes a base-graph change for
  /// in-flight builds: bumps `base_version_` and either logs the batch
  /// (replayable) or just invalidates (out-of-band mutation, passed as
  /// null).
  void NoteBaseChangedLocked(graph::DeltaFootprintPtr delta);

  /// `ApplyAdvice` with optional error reservation: when
  /// `reserve_errors` is set, each scheduled handle is reserved (under
  /// `build_mu_`, before the job is runnable) so a concurrent
  /// `TakeBuildError` drain can never steal this round's failures.
  Result<AdviceReport> ApplyAdviceImpl(const AdvicePlan& plan,
                                       bool reserve_errors);

  /// Schedules `job` on the build pool, reserving its error handle
  /// first when asked. Caller holds the writer lock.
  void EnqueueBuildLocked(BuildJob job, bool reserve_errors);

  /// Build-pool worker: drains the queue until stopped.
  void BuildWorkerLoop();

  /// Runs one build to completion: copy the base under the reader lock,
  /// materialize with no lock held, publish under the writer lock,
  /// replaying or rebuilding when the base moved mid-build.
  void RunBuildJob(BuildJob job);

  /// Records a failed build and quarantines its catalog entry (the
  /// name stays reserved, with the failure in `CatalogEntry::health`).
  void FailBuild(const BuildJob& job, const Status& status);

  /// Removes and returns the first failure belonging to one of
  /// `handles` (OK when none); other rounds' failures stay in the slot
  /// for their own callers.
  Status TakeBuildErrorForHandles(const std::vector<ViewHandle>& handles);

  /// \name Durability internals.
  /// @{

  /// Fresh-directory bootstrap (constructor path): supersedes whatever
  /// the directory holds with a checkpoint of the current base graph at
  /// an LSN above every existing one, then opens the WAL after it.
  Status InitDurability(std::optional<DurableBootstrap> bootstrap);

  /// Appends one WAL record under the writer lock (caller holds `mu_`);
  /// returns the token the post-release durability wait needs.
  Result<durability::WriteAheadLog::AppendToken> LogMutationLocked(
      std::string payload);

  /// After releasing `mu_`: waits out the fsync policy for `token` and
  /// pokes the background checkpointer when the WAL-bytes threshold is
  /// crossed.
  Status FinishMutationDurably(durability::WriteAheadLog::AppendToken token);

  /// Background checkpointer: waits for the WAL-bytes trigger, runs
  /// `Checkpoint`, counts failures (the WAL keeps everything, so a
  /// failed checkpoint only defers truncation).
  void CheckpointLoop();

  /// Rewrites the `views.cat` sidecar with the catalog's current
  /// definition set (caller holds `mu_` exclusively). The sidecar is
  /// what makes a view added after the last checkpoint survive a crash.
  Status PersistViewSetLocked();

  /// @}

  /// \name Self-healing internals.
  /// @{

  /// Wakes the repair worker (a view was quarantined or re-quarantined).
  void NotifyRepair();

  /// Repair worker: scans for quarantined views and re-materializes
  /// them with capped exponential backoff per view name.
  void RepairLoop();

  /// @}

  graph::PropertyGraph base_;
  EngineOptions options_;
  ViewCatalog catalog_;
  Planner planner_;
  WorkloadTracker tracker_;
  /// Readers: Execute/ExecuteBatch and background materializations.
  /// Writers: everything that mutates the catalog or the base graph.
  mutable std::shared_mutex mu_;

  /// Monotonic count of base-graph changes (unlike the catalog
  /// generation, catalog-only changes do not move it). Guarded by `mu_`:
  /// written under the writer lock, read under either lock.
  uint64_t base_version_ = 0;
  /// Delta batches applied while builds were in flight, tagged with the
  /// base version they produced. Guarded by `mu_`.
  std::vector<PendingDelta> delta_log_;

  /// \name Background build pool (guarded by `build_mu_`).
  /// @{
  mutable std::mutex build_mu_;
  std::condition_variable build_cv_;       ///< Workers: queue non-empty/stop.
  std::condition_variable build_idle_cv_;  ///< Waiters: pool drained.
  std::deque<BuildJob> build_queue_;
  size_t builds_running_ = 0;
  bool build_stop_ = false;
  std::vector<std::thread> build_workers_;
  /// Failures tagged with the failed build's handle, so a blocking
  /// caller collects exactly the failures of the builds *it* scheduled
  /// without stealing (or being confused by) a concurrent round's.
  std::vector<std::pair<ViewHandle, Status>> build_errors_;
  /// Handles whose failures a blocking round will collect itself;
  /// `TakeBuildError` skips them so a concurrent drain cannot steal a
  /// failure `AnalyzeWorkload` is about to report.
  std::set<ViewHandle> reserved_error_handles_;
  /// @}

  /// \name Persistent batch-execution pool (guarded by `batch_mu_`).
  /// Started lazily by the first `ExecuteBatch` with more tasks than
  /// one thread should run; threads persist across batches (the old
  /// implementation spawned and joined a fresh pool per call) and are
  /// joined by the destructor. Workers never take the engine lock — the
  /// `ExecuteBatch` caller holds the reader lock for the whole batch,
  /// which covers every task the pool runs for it.
  /// @{
  mutable std::mutex batch_mu_;
  std::condition_variable batch_cv_;       ///< Workers: tasks queued/stop.
  std::condition_variable batch_done_cv_;  ///< Callers: their job drained.
  std::deque<std::shared_ptr<BatchJob>> batch_queue_;
  bool batch_stop_ = false;
  std::vector<std::thread> batch_workers_;
  /// @}

  std::atomic<size_t> builds_completed_{0};
  std::atomic<size_t> builds_replayed_{0};
  std::atomic<size_t> build_retries_{0};

  std::atomic<size_t> fused_groups_{0};
  std::atomic<size_t> fused_members_{0};
  std::atomic<uint64_t> traversal_expansions_{0};

  /// \name Admission gate (guarded by `admission_mu_`). Kept apart from
  /// `mu_` so a shed decision never waits behind a long writer.
  /// @{
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t in_flight_ = 0;
  /// @}

  std::atomic<size_t> queries_shed_{0};
  std::atomic<size_t> queries_timed_out_{0};
  /// mutable: accumulated by the const `RunPlan` on the reader path.
  mutable std::atomic<uint64_t> deadline_checks_{0};
  std::atomic<size_t> batch_worker_faults_{0};

  /// \name Periodic auto-advise trigger state.
  /// @{
  /// Recorded-execution count at which the next triggered round fires
  /// (0 = trigger disabled). CAS-advanced by the winning thread.
  std::atomic<uint64_t> next_auto_advise_at_{0};
  std::atomic<size_t> auto_advises_{0};
  std::atomic<size_t> auto_advise_errors_{0};
  /// @}

  /// \name Durability state.
  /// @{
  /// Null when durability is disabled. Appended under `mu_` (so LSN
  /// order equals apply order); the durability wait happens after `mu_`
  /// is released so concurrent `kBatch` writers share one fsync.
  std::unique_ptr<durability::WriteAheadLog> wal_;
  /// Sticky: set when durable-state initialization or recovery plumbing
  /// failed; every mutation then refuses rather than silently running
  /// volatile. Guarded by `mu_` at init, read-only afterwards.
  Status durability_error_;
  /// WAL bytes appended since the last checkpoint (trigger counter).
  std::atomic<uint64_t> wal_bytes_since_checkpoint_{0};
  std::atomic<size_t> checkpoints_written_{0};
  std::atomic<size_t> checkpoint_failures_{0};
  /// Checkpointer thread state (guarded by `checkpoint_mu_`).
  mutable std::mutex checkpoint_mu_;
  std::condition_variable checkpoint_cv_;
  bool checkpoint_requested_ = false;
  bool checkpoint_stop_ = false;
  /// Serializes Checkpoint() runs (manual + background) so two
  /// checkpointers never interleave their truncations.
  std::mutex checkpoint_run_mu_;
  std::thread checkpoint_thread_;
  /// @}

  /// \name Self-healing state (guarded by `repair_mu_`).
  /// @{
  struct RepairState {
    size_t attempts = 0;
    std::chrono::steady_clock::time_point next_attempt;
    bool gave_up = false;
  };
  mutable std::mutex repair_mu_;
  std::condition_variable repair_cv_;
  bool repair_poke_ = false;
  bool repair_stop_ = false;
  /// Per-view backoff, keyed by view name; pruned when the view leaves
  /// quarantine (repaired, reclaimed manually, or removed).
  std::unordered_map<std::string, RepairState> repair_state_;
  std::thread repair_thread_;
  std::atomic<size_t> quarantine_repairs_{0};
  std::atomic<size_t> repair_failures_{0};
  /// @}
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_ENGINE_H_
