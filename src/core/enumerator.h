/// \file enumerator.h
/// \brief Constraint-based view enumeration (§IV).
///
/// Pipeline (Fig. 4): extract explicit facts from the query and schema,
/// load the constraint-mining rules and view templates into the inference
/// engine, and evaluate each template. The mined constraints are injected
/// simply by being present in the same knowledge base — the inference
/// engine's goal ordering prunes infeasible candidates (e.g. odd-k
/// job-to-job connectors) before they are ever constructed.

#ifndef KASKADE_CORE_ENUMERATOR_H_
#define KASKADE_CORE_ENUMERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/view_definition.h"
#include "graph/schema.h"
#include "prolog/solver.h"
#include "query/ast.h"

namespace kaskade::core {

/// \brief A view candidate produced by template instantiation, with the
/// query vertices that witnessed it (the X/Y unification of Lst. 3).
struct CandidateView {
  ViewDefinition definition;
  std::string query_vertex_x;
  std::string query_vertex_y;
};

/// \brief Enumeration counters for the §IV-A2 ablation.
struct EnumerationStats {
  size_t candidates = 0;        ///< Distinct views after dedup.
  size_t instantiations = 0;    ///< Template unifications found.
  uint64_t inference_steps = 0; ///< Solver resolution steps consumed.
};

/// \brief Options controlling the enumeration.
struct EnumeratorOptions {
  /// Upper bound on connector hop count considered (k <= max_k). The
  /// query constraints usually bind k well below this; the cap guards
  /// degenerate rule sets.
  int max_k = 16;
  /// Enumerate summarizer templates as well as connectors.
  bool enumerate_summarizers = true;
  /// Solver budget per template query.
  prolog::SolverOptions solver_options;
};

/// \brief Enumerates candidate views for queries against one schema.
class ViewEnumerator {
 public:
  ViewEnumerator(const graph::GraphSchema* schema,
                 EnumeratorOptions options = {})
      : schema_(schema), options_(options) {}

  /// Enumerates candidates for `q` (constraint mining + inference).
  Result<std::vector<CandidateView>> Enumerate(const query::Query& q,
                                               EnumerationStats* stats = nullptr);

  /// Ablation baseline: enumerate k-hop schema walks for k = 1..max_k
  /// with *no query constraints* (the >= M^k space of §IV-A2). Returns
  /// the number of (srcType, dstType, k) instantiations.
  Result<uint64_t> CountUnconstrainedSchemaWalks(int max_k,
                                                 uint64_t* steps = nullptr);

  /// Procedural baseline: Alg. 1 of the paper (k_hop_schema_paths),
  /// returning the number of k-length schema paths built level by level.
  static uint64_t ProceduralKHopSchemaPaths(const graph::GraphSchema& schema,
                                            int k);

 private:
  const graph::GraphSchema* schema_;
  EnumeratorOptions options_;
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_ENUMERATOR_H_
