#include "core/knapsack.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kaskade::core {

namespace {

struct Indexed {
  size_t original;
  double value;
  double weight;
  double Density() const {
    return weight > 0 ? value / weight : std::numeric_limits<double>::infinity();
  }
};

/// Fractional (Dantzig) bound for the remaining items [start..end) given
/// remaining capacity.
double FractionalBound(const std::vector<Indexed>& items, size_t start,
                       double remaining_capacity) {
  double bound = 0;
  for (size_t i = start; i < items.size(); ++i) {
    if (items[i].weight <= remaining_capacity) {
      bound += items[i].value;
      remaining_capacity -= items[i].weight;
    } else {
      if (items[i].weight > 0) {
        bound += items[i].value * (remaining_capacity / items[i].weight);
      }
      break;
    }
  }
  return bound;
}

class BranchAndBound {
 public:
  BranchAndBound(std::vector<Indexed> items, double capacity)
      : items_(std::move(items)), capacity_(capacity) {
    current_.assign(items_.size(), false);
    best_choice_.assign(items_.size(), false);
  }

  void Run() { Recurse(0, 0, 0); }

  double best_value() const { return best_value_; }
  const std::vector<bool>& best_choice() const { return best_choice_; }

 private:
  void Recurse(size_t index, double value, double weight) {
    if (value > best_value_) {
      best_value_ = value;
      best_choice_ = current_;
    }
    if (index >= items_.size()) return;
    double bound = value + FractionalBound(items_, index, capacity_ - weight);
    // Strict comparison: an epsilon here would wrongly prune items whose
    // (legitimate) values are tiny, e.g. improvement ratios much below 1.
    if (bound <= best_value_) return;  // prune
    // Include (if it fits) — explored first since items are
    // density-sorted, so good solutions are found early for pruning.
    const Indexed& item = items_[index];
    if (weight + item.weight <= capacity_ + kEps) {
      current_[index] = true;
      Recurse(index + 1, value + item.value, weight + item.weight);
      current_[index] = false;
    }
    // Exclude.
    Recurse(index + 1, value, weight);
  }

  static constexpr double kEps = 1e-12;

  std::vector<Indexed> items_;
  double capacity_;
  std::vector<bool> current_;
  std::vector<bool> best_choice_;
  double best_value_ = -1;
};

KnapsackResult BuildResult(const std::vector<KnapsackItem>& items,
                           const std::vector<size_t>& selected) {
  KnapsackResult result;
  result.selected = selected;
  std::sort(result.selected.begin(), result.selected.end());
  for (size_t i : result.selected) {
    result.total_value += items[i].value;
    result.total_weight += items[i].weight;
  }
  return result;
}

}  // namespace

KnapsackResult SolveKnapsackBranchAndBound(
    const std::vector<KnapsackItem>& items, double capacity) {
  std::vector<Indexed> feasible;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight <= capacity && items[i].value > 0) {
      feasible.push_back(Indexed{i, items[i].value, items[i].weight});
    }
  }
  std::sort(feasible.begin(), feasible.end(),
            [](const Indexed& a, const Indexed& b) {
              return a.Density() > b.Density();
            });
  BranchAndBound solver(feasible, capacity);
  solver.Run();
  std::vector<size_t> selected;
  for (size_t i = 0; i < feasible.size(); ++i) {
    if (solver.best_choice()[i]) selected.push_back(feasible[i].original);
  }
  return BuildResult(items, selected);
}

KnapsackResult SolveKnapsackDP(const std::vector<KnapsackItem>& items,
                               double capacity, size_t resolution) {
  if (capacity <= 0 || items.empty() || resolution == 0) return {};
  // Scale weights to integers, rounding *up* so the scaled solution never
  // exceeds the true capacity.
  double scale = static_cast<double>(resolution) / capacity;
  std::vector<size_t> w(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    w[i] = static_cast<size_t>(std::ceil(items[i].weight * scale));
  }
  std::vector<double> best(resolution + 1, 0);
  std::vector<std::vector<bool>> take(items.size(),
                                      std::vector<bool>(resolution + 1, false));
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].value <= 0) continue;
    for (size_t c = resolution; c + 1 > w[i]; --c) {
      size_t prev = c - w[i];
      if (best[prev] + items[i].value > best[c]) {
        best[c] = best[prev] + items[i].value;
        take[i][c] = true;
      }
    }
  }
  // Reconstruct.
  size_t c = resolution;
  std::vector<size_t> selected;
  for (size_t i = items.size(); i-- > 0;) {
    if (c >= w[i] && take[i][c]) {
      selected.push_back(i);
      c -= w[i];
    }
  }
  return BuildResult(items, selected);
}

KnapsackResult SolveKnapsackGreedy(const std::vector<KnapsackItem>& items,
                                   double capacity) {
  std::vector<Indexed> feasible;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight <= capacity && items[i].value > 0) {
      feasible.push_back(Indexed{i, items[i].value, items[i].weight});
    }
  }
  std::sort(feasible.begin(), feasible.end(),
            [](const Indexed& a, const Indexed& b) {
              return a.Density() > b.Density();
            });
  double remaining = capacity;
  std::vector<size_t> selected;
  for (const Indexed& item : feasible) {
    if (item.weight <= remaining) {
      selected.push_back(item.original);
      remaining -= item.weight;
    }
  }
  return BuildResult(items, selected);
}

}  // namespace kaskade::core
