/// \file rewriter.h
/// \brief View-based query rewriting (§V-C).
///
/// The workhorse transformation rewrites a MATCH chain over the raw graph
/// into a variable-length traversal over a k-hop connector view: the
/// blast-radius query of Lst. 1 (hops 2..10 between the two jobs) becomes
/// a 1..5-hop traversal of `2_HOP_JOB_TO_JOB` edges (Lst. 4).
///
/// Exactness: a chain rewrite is produced only when the schema *forces*
/// it to be lossless —
///  (a) every fixed-type edge in the chain is the only schema edge type
///      between its endpoint types, so dropping edge-type labels loses
///      nothing;
///  (b) for every path length L the raw chain admits, the set of vertex
///      types reachable from the source type in i steps contains the
///      connector endpoint type exactly at multiples of k and nothing
///      else there, so contracted paths cut at connector vertices.
/// Under (a)+(b) the rewritten query returns byte-identical results
/// (tested in tests/rewriter_test.cc and integration tests).
///
/// Note on Lst. 4: the paper rewrites hops 0..8 between files as `*1..4`
/// over the connector; the chain including its two fixed edges spans raw
/// lengths 2..10, whose exact contraction is `*1..5`. We emit `*1..5`
/// (and document the discrepancy in EXPERIMENTS.md) because result
/// equality is part of our test contract.

#ifndef KASKADE_CORE_REWRITER_H_
#define KASKADE_CORE_REWRITER_H_

#include "common/result.h"
#include "core/view_definition.h"
#include "graph/schema.h"
#include "query/ast.h"

namespace kaskade::core {

/// Rewrites `q` to run against the materialized `view`. Fails with
/// NotFound("view not applicable") when the view cannot serve the query
/// losslessly; callers treat that as "skip this view".
///
/// - Connectors: the innermost MATCH must be a single chain whose
///   endpoints match the view's endpoint types; the chain is replaced by
///   a connector traversal with exact hop bounds.
/// - Summarizers: the rewrite is the identity query (it executes against
///   the summarized graph), applicable iff every type the query touches
///   is preserved by the summarizer.
Result<query::Query> RewriteQueryWithView(const query::Query& q,
                                          const ViewDefinition& view,
                                          const graph::GraphSchema& schema);

/// True when `view` (a summarizer) preserves every vertex/edge type the
/// query references.
bool SummarizerCoversQuery(const ViewDefinition& view, const query::Query& q,
                           const graph::GraphSchema& schema);

/// \brief Decomposition of a MATCH pattern into a single directed chain.
struct PatternChain {
  std::vector<std::string> node_names;  ///< n0 .. nm in order.
  int min_total_hops = 0;               ///< Sum of edge minimums.
  int max_total_hops = 0;               ///< Sum of edge maximums.
};

/// Extracts the chain structure of `match` (nullopt-style: NotFound when
/// the pattern is not a single chain).
Result<PatternChain> ExtractChain(const query::MatchQuery& match);

}  // namespace kaskade::core

#endif  // KASKADE_CORE_REWRITER_H_
