/// \file cost_model.h
/// \brief Kaskade's cost model (§V-A): view sizes, creation costs, and
/// query evaluation costs on the base graph and on not-yet-materialized
/// views.
///
/// Creation cost is proportional to the estimated view size (the paper
/// argues I/O dominates computation for these views). Query cost on a
/// *candidate* view — needed during view selection, before anything is
/// materialized — is predicted from the view's estimated vertex/edge
/// counts (a synthetic degree profile), while query cost on a
/// *materialized* view uses the view graph's real statistics.

#ifndef KASKADE_CORE_COST_MODEL_H_
#define KASKADE_CORE_COST_MODEL_H_

#include "core/size_estimator.h"
#include "core/view_definition.h"
#include "graph/property_graph.h"
#include "graph/stats.h"
#include "query/ast.h"
#include "query/cost.h"

namespace kaskade::core {

/// \brief Cost-model configuration.
struct CostModelOptions {
  /// Degree percentile for view *size* estimation (§V-A: Kaskade
  /// defaults to alpha = 95, an upper bound on most real graphs) — used
  /// for space-budget feasibility and creation cost.
  double size_alpha = 95;
  /// Degree percentile for predicting *query cost on a candidate view*.
  /// Improvement ratios compare a real graph against an estimate; using
  /// the upper bound there would systematically understate view benefit,
  /// so the central estimate is used instead.
  double improvement_alpha = 50;
  /// Options forwarded to the query-evaluation cost proxy.
  query::CostModelOptions eval;
};

/// \brief Bundles the estimators around one base graph.
class CostModel {
 public:
  CostModel(const graph::PropertyGraph* base, CostModelOptions options = {})
      : base_(base),
        stats_(graph::GraphStats::Compute(*base)),
        options_(options) {}

  const graph::GraphStats& stats() const { return stats_; }

  /// Estimated edge count of `view` when materialized over the base
  /// graph (§V-A "View size estimation").
  double ViewSizeEdges(const ViewDefinition& view) const {
    return EstimateViewSizeEdges(*base_, stats_, view, options_.size_alpha);
  }

  /// View creation cost (I/O-dominated, proportional to size).
  double ViewCreationCost(const ViewDefinition& view) const {
    return ViewSizeEdges(view);
  }

  /// Evaluation cost of `q` over the base graph.
  double QueryCostOnBase(const query::Query& q) const {
    return query::EstimateEvalCost(q, *base_, stats_, options_.eval);
  }

  /// Predicted evaluation cost of an (already rewritten) query over a
  /// candidate view that has not been materialized: uses the estimated
  /// view size to synthesize a degree profile.
  double QueryCostOnCandidateView(const query::Query& rewritten,
                                  const ViewDefinition& view) const;

 private:
  const graph::PropertyGraph* base_;
  graph::GraphStats stats_;
  CostModelOptions options_;
};

/// \name Delta-maintenance costing
///
/// Operation-count proxies for keeping one view consistent under a batch
/// of `inserts` edge insertions and `removals` edge removals, versus
/// re-materializing from scratch. They use the O(1) mean-degree profile
/// of the *current* base graph (per-delta decisions cannot afford a full
/// statistics pass). Removals on connectors cost more than insertions
/// (multiplicity decrements plus orphan collection), so delete-heavy
/// batches cross over to re-materialization earlier — the behaviour
/// `ViewCatalog::ApplyBaseDelta` exploits.
/// @{

/// Predicted cost of maintaining `view` incrementally under the delta.
/// Infinite for view kinds without a maintainer.
double EstimateIncrementalMaintenanceCost(const graph::PropertyGraph& base,
                                          const ViewDefinition& view,
                                          size_t inserts, size_t removals);

/// Predicted cost of re-materializing `view` over the (post-delta) base.
double EstimateRematerializationCost(const graph::PropertyGraph& base,
                                     const ViewDefinition& view);

/// True when a from-scratch build is predicted cheaper than the
/// incremental pass for this delta.
bool PreferRematerialization(const graph::PropertyGraph& base,
                             const ViewDefinition& view, size_t inserts,
                             size_t removals);
/// @}

}  // namespace kaskade::core

#endif  // KASKADE_CORE_COST_MODEL_H_
