#include "core/view_selector.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/rewriter.h"

namespace kaskade::core {

Result<SelectionReport> ViewSelector::Select(
    const std::vector<WorkloadEntry>& workload) {
  return Select(workload, SelectionContext{});
}

Result<SelectionReport> ViewSelector::Select(
    const std::vector<WorkloadEntry>& workload,
    const SelectionContext& context) {
  ViewEnumerator enumerator(&base_->schema(), options_.enumerator);

  // Enumerate candidates across the workload, deduplicating by name.
  std::map<std::string, ViewDefinition> candidates;
  for (const WorkloadEntry& entry : workload) {
    KASKADE_ASSIGN_OR_RETURN(std::vector<CandidateView> views,
                             enumerator.Enumerate(entry.query));
    for (CandidateView& cand : views) {
      candidates.try_emplace(cand.definition.Name(),
                             std::move(cand.definition));
    }
  }
  // Incumbent re-entry: a materialized view competes even when the
  // observed workload no longer enumerates it — scoring it at zero
  // applicable queries is how it becomes a drop candidate.
  std::set<std::string> materialized_names;
  for (const ViewDefinition& def : context.materialized) {
    materialized_names.insert(def.Name());
    candidates.try_emplace(def.Name(), def);
  }

  // Score each candidate against the whole workload.
  SelectionReport report;
  report.budget_edges = options_.budget_edges;
  for (auto& [name, def] : candidates) {
    ScoredView scored;
    scored.definition = def;
    scored.currently_materialized = materialized_names.count(name) != 0;
    scored.estimated_size_edges = cost_model_.ViewSizeEdges(def);
    scored.creation_cost = cost_model_.ViewCreationCost(def);
    for (const WorkloadEntry& entry : workload) {
      Result<query::Query> rewritten =
          RewriteQueryWithView(entry.query, def, base_->schema());
      if (!rewritten.ok()) continue;  // view not applicable to this query
      double base_cost = cost_model_.QueryCostOnBase(entry.query);
      double view_cost =
          cost_model_.QueryCostOnCandidateView(*rewritten, def);
      if (view_cost <= 0) continue;
      scored.improvement += entry.weight * (base_cost / view_cost);
      ++scored.applicable_queries;
    }
    scored.value = scored.creation_cost > 0
                       ? scored.improvement / scored.creation_cost
                       : scored.improvement;
    if (scored.currently_materialized) scored.value *= context.keep_boost;
    report.candidates.push_back(std::move(scored));
  }

  // Knapsack over the scored candidates.
  std::vector<KnapsackItem> items;
  items.reserve(report.candidates.size());
  for (const ScoredView& scored : report.candidates) {
    items.push_back(KnapsackItem{scored.value, scored.estimated_size_edges});
  }
  KnapsackResult solution =
      options_.use_greedy
          ? SolveKnapsackGreedy(items, options_.budget_edges)
          : SolveKnapsackBranchAndBound(items, options_.budget_edges);
  for (size_t index : solution.selected) {
    report.selected.push_back(report.candidates[index]);
    report.selected_size_edges +=
        report.candidates[index].estimated_size_edges;
  }
  return report;
}

}  // namespace kaskade::core
