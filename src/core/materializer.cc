#include "core/materializer.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "graph/contraction.h"

namespace kaskade::core {

using graph::EdgeId;
using graph::EdgeTypeId;
using graph::GraphSchema;
using graph::PropertyGraph;
using graph::PropertyMap;
using graph::PropertyValue;
using graph::VertexId;
using graph::VertexTypeId;

namespace {

Result<MaterializedView> MaterializeConnector(const PropertyGraph& base,
                                              const ViewDefinition& view) {
  graph::ContractionSpec spec;
  spec.connector_edge_name = view.EdgeName();
  const GraphSchema& schema = base.schema();
  auto resolve_type = [&](const std::string& name) -> Result<VertexTypeId> {
    if (name.empty()) return graph::kInvalidTypeId;
    VertexTypeId id = schema.FindVertexType(name);
    if (id == graph::kInvalidTypeId) {
      return Status::NotFound("unknown vertex type '" + name +
                              "' in view definition");
    }
    return id;
  };
  KASKADE_ASSIGN_OR_RETURN(spec.source_type, resolve_type(view.source_type));
  KASKADE_ASSIGN_OR_RETURN(spec.target_type, resolve_type(view.target_type));

  switch (view.kind) {
    case ViewKind::kKHopConnector:
      spec.k = view.k;
      break;
    case ViewKind::kSameVertexTypeConnector:
      spec.k = 0;  // variable length
      spec.max_hops = view.k;
      break;
    case ViewKind::kSameEdgeTypeConnector: {
      spec.k = 0;
      spec.max_hops = view.k;
      EdgeTypeId et = schema.FindEdgeType(view.path_edge_type);
      if (et == graph::kInvalidTypeId) {
        return Status::NotFound("unknown edge type '" + view.path_edge_type +
                                "' in view definition");
      }
      spec.edge_types.push_back(et);
      break;
    }
    case ViewKind::kSourceToSinkConnector:
      spec.k = 0;
      spec.max_hops = view.k;
      spec.sources_and_sinks_only = true;
      break;
    default:
      return Status::Internal("not a connector view");
  }
  KASKADE_ASSIGN_OR_RETURN(graph::ConnectorView cv,
                           graph::ContractPaths(base, spec));
  return MaterializedView{view, std::move(cv.view), std::move(cv.view_to_base)};
}

/// Shared machinery for the four type-filter summarizers: keeps the
/// vertex/edge types accepted by the two predicates.
Result<MaterializedView> MaterializeTypeFilter(
    const PropertyGraph& base, const ViewDefinition& view,
    const std::vector<bool>& keep_vertex_type,
    const std::vector<bool>& keep_edge_type) {
  const GraphSchema& schema = base.schema();
  GraphSchema view_schema;
  for (size_t t = 0; t < schema.num_vertex_types(); ++t) {
    if (keep_vertex_type[t]) {
      view_schema.AddVertexType(
          schema.vertex_type_name(static_cast<VertexTypeId>(t)));
    }
  }
  for (size_t e = 0; e < schema.num_edge_types(); ++e) {
    const graph::EdgeTypeDecl& decl =
        schema.edge_type(static_cast<EdgeTypeId>(e));
    if (keep_edge_type[e] && keep_vertex_type[decl.source_type] &&
        keep_vertex_type[decl.target_type]) {
      KASKADE_RETURN_IF_ERROR(
          view_schema
              .AddEdgeType(decl.name,
                           schema.vertex_type_name(decl.source_type),
                           schema.vertex_type_name(decl.target_type))
              .status());
    }
  }

  // Property predicates (footnote 5): vertex-filter predicates drop
  // non-matching vertices; edge-filter predicates drop non-matching
  // edges.
  bool vertex_predicate =
      view.has_predicate() &&
      (view.kind == ViewKind::kVertexInclusionSummarizer ||
       view.kind == ViewKind::kVertexRemovalSummarizer);
  bool edge_predicate = view.has_predicate() &&
                        (view.kind == ViewKind::kEdgeInclusionSummarizer ||
                         view.kind == ViewKind::kEdgeRemovalSummarizer);

  PropertyGraph out(view_schema);
  std::vector<VertexId> view_to_base;
  std::unordered_map<VertexId, VertexId> base_to_view;
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    if (!base.IsVertexLive(v)) continue;
    VertexTypeId t = base.VertexType(v);
    if (!keep_vertex_type[t]) continue;
    if (vertex_predicate &&
        !EvalPredicate(base.VertexProperty(v, view.predicate_property),
                       view.predicate_op, view.predicate_value)) {
      continue;
    }
    VertexTypeId vt = out.schema().FindVertexType(schema.vertex_type_name(t));
    PropertyMap props = base.VertexProperties(v);
    props.Set("orig_id", PropertyValue(static_cast<int64_t>(v)));
    VertexId nv = out.AddVertexOfType(vt, std::move(props));
    base_to_view.emplace(v, nv);
    view_to_base.push_back(v);
  }
  for (EdgeId e = 0; e < base.NumEdges(); ++e) {
    if (!base.IsEdgeLive(e)) continue;
    const graph::EdgeRecord& rec = base.Edge(e);
    if (!keep_edge_type[rec.type]) continue;
    if (edge_predicate &&
        !EvalPredicate(base.EdgeProperty(e, view.predicate_property),
                       view.predicate_op, view.predicate_value)) {
      continue;
    }
    auto src = base_to_view.find(rec.source);
    auto dst = base_to_view.find(rec.target);
    if (src == base_to_view.end() || dst == base_to_view.end()) continue;
    EdgeTypeId et =
        out.schema().FindEdgeType(schema.edge_type(rec.type).name);
    if (et == graph::kInvalidTypeId) continue;
    // "orig_eid" records the contributing base edge (the edge-level
    // lineage the incremental maintainer uses to undo removals).
    PropertyMap eprops = base.EdgeProperties(e);
    eprops.Set("orig_eid", PropertyValue(static_cast<int64_t>(e)));
    KASKADE_RETURN_IF_ERROR(out.AddEdgeOfType(src->second, dst->second, et,
                                              std::move(eprops))
                                .status());
  }
  return MaterializedView{view, std::move(out), std::move(view_to_base)};
}

Result<MaterializedView> MaterializeSummarizer(const PropertyGraph& base,
                                               const ViewDefinition& view) {
  const GraphSchema& schema = base.schema();
  std::vector<bool> keep_vertex(schema.num_vertex_types(), true);
  std::vector<bool> keep_edge(schema.num_edge_types(), true);
  auto vertex_type_id = [&](const std::string& name) -> Result<VertexTypeId> {
    VertexTypeId id = schema.FindVertexType(name);
    if (id == graph::kInvalidTypeId) {
      return Status::NotFound("unknown vertex type '" + name + "'");
    }
    return id;
  };
  auto edge_type_id = [&](const std::string& name) -> Result<EdgeTypeId> {
    EdgeTypeId id = schema.FindEdgeType(name);
    if (id == graph::kInvalidTypeId) {
      return Status::NotFound("unknown edge type '" + name + "'");
    }
    return id;
  };
  switch (view.kind) {
    case ViewKind::kVertexInclusionSummarizer: {
      keep_vertex.assign(schema.num_vertex_types(), false);
      for (const std::string& t : view.type_list) {
        KASKADE_ASSIGN_OR_RETURN(VertexTypeId id, vertex_type_id(t));
        keep_vertex[id] = true;
      }
      break;
    }
    case ViewKind::kVertexRemovalSummarizer: {
      for (const std::string& t : view.type_list) {
        KASKADE_ASSIGN_OR_RETURN(VertexTypeId id, vertex_type_id(t));
        keep_vertex[id] = false;
      }
      break;
    }
    case ViewKind::kEdgeInclusionSummarizer: {
      keep_edge.assign(schema.num_edge_types(), false);
      for (const std::string& t : view.type_list) {
        KASKADE_ASSIGN_OR_RETURN(EdgeTypeId id, edge_type_id(t));
        keep_edge[id] = true;
      }
      break;
    }
    case ViewKind::kEdgeRemovalSummarizer: {
      for (const std::string& t : view.type_list) {
        KASKADE_ASSIGN_OR_RETURN(EdgeTypeId id, edge_type_id(t));
        keep_edge[id] = false;
      }
      break;
    }
    default:
      return Status::Internal("not a filter summarizer view");
  }
  return MaterializeTypeFilter(base, view, keep_vertex, keep_edge);
}

/// Vertex- and subgraph-aggregator summarizers (Table II): group
/// vertices by `group_by_property` into supervertices; numeric vertex
/// properties are summed per group. Edges incident to grouped vertices
/// are re-targeted to the supervertices; parallel view edges collapse
/// into one with a "weight" count.
///
/// The vertex aggregator groups one vertex type. The subgraph aggregator
/// groups every vertex carrying the property, keyed by (type, value) —
/// the paper's template library likewise does not merge vertices of
/// different types (§VI-B); vertices without the property stay
/// individual.
Result<MaterializedView> MaterializeVertexAggregator(
    const PropertyGraph& base, const ViewDefinition& view) {
  const GraphSchema& schema = base.schema();
  const bool all_types =
      view.kind == ViewKind::kSubgraphAggregatorSummarizer;
  VertexTypeId agg_type = graph::kInvalidTypeId;
  if (!all_types) {
    agg_type = schema.FindVertexType(view.source_type);
    if (agg_type == graph::kInvalidTypeId) {
      return Status::NotFound("unknown vertex type '" + view.source_type +
                              "'");
    }
  }
  if (view.group_by_property.empty()) {
    return Status::InvalidArgument("aggregator requires group_by_property");
  }

  GraphSchema view_schema;
  for (const std::string& name : schema.vertex_type_names()) {
    view_schema.AddVertexType(name);
  }
  for (const graph::EdgeTypeDecl& decl : schema.edge_types()) {
    KASKADE_RETURN_IF_ERROR(
        view_schema
            .AddEdgeType(decl.name, schema.vertex_type_name(decl.source_type),
                         schema.vertex_type_name(decl.target_type))
            .status());
  }
  PropertyGraph out(view_schema);
  std::vector<VertexId> view_to_base;
  std::unordered_map<VertexId, VertexId> base_to_view;

  // Pass 1: supervertices for grouped vertices, copies for the rest.
  // Group keys include the vertex type so types never merge.
  std::map<std::string, VertexId> group_vertex;
  std::map<std::string, std::map<std::string, double>> group_sums;
  std::map<std::string, int64_t> group_counts;
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    if (!base.IsVertexLive(v)) continue;
    PropertyValue group_value =
        base.VertexProperty(v, view.group_by_property);
    bool grouped = all_types ? !group_value.is_null()
                             : base.VertexType(v) == agg_type;
    if (!grouped) {
      PropertyMap props = base.VertexProperties(v);
      props.Set("orig_id", PropertyValue(static_cast<int64_t>(v)));
      VertexId nv = out.AddVertexOfType(base.VertexType(v), std::move(props));
      base_to_view.emplace(v, nv);
      view_to_base.push_back(v);
      continue;
    }
    std::string key = std::to_string(base.VertexType(v)) + "\x1f" +
                      group_value.ToString();
    auto it = group_vertex.find(key);
    if (it == group_vertex.end()) {
      PropertyMap props;
      props.Set(view.group_by_property, PropertyValue(group_value.ToString()));
      VertexId nv = out.AddVertexOfType(base.VertexType(v), std::move(props));
      it = group_vertex.emplace(key, nv).first;
      view_to_base.push_back(v);  // representative
    }
    base_to_view.emplace(v, it->second);
    ++group_counts[key];
    for (const auto& [pkey, pvalue] : base.VertexProperties(v)) {
      if (pvalue.is_numeric() && pkey != view.group_by_property) {
        group_sums[key][pkey] += pvalue.ToDouble();
      }
    }
  }
  for (const auto& [key, sums] : group_sums) {
    VertexId nv = group_vertex.at(key);
    for (const auto& [pkey, total] : sums) {
      KASKADE_RETURN_IF_ERROR(out.SetVertexProperty(nv, pkey, total));
    }
  }
  for (const auto& [key, count] : group_counts) {
    KASKADE_RETURN_IF_ERROR(
        out.SetVertexProperty(group_vertex.at(key), "members", count));
  }

  // Pass 2: edges, collapsing parallels between supervertices.
  std::map<std::tuple<VertexId, VertexId, EdgeTypeId>, EdgeId> dedup;
  for (EdgeId e = 0; e < base.NumEdges(); ++e) {
    if (!base.IsEdgeLive(e)) continue;
    const graph::EdgeRecord& rec = base.Edge(e);
    VertexId src = base_to_view.at(rec.source);
    VertexId dst = base_to_view.at(rec.target);
    auto key = std::make_tuple(src, dst, rec.type);
    auto it = dedup.find(key);
    if (it == dedup.end()) {
      PropertyMap props;
      props.Set("weight", PropertyValue(static_cast<int64_t>(1)));
      KASKADE_ASSIGN_OR_RETURN(EdgeId ne,
                               out.AddEdgeOfType(src, dst, rec.type,
                                                 std::move(props)));
      dedup.emplace(key, ne);
    } else {
      int64_t w = out.EdgeProperty(it->second, "weight").as_int();
      KASKADE_RETURN_IF_ERROR(
          out.SetEdgeProperty(it->second, "weight", PropertyValue(w + 1)));
    }
  }
  return MaterializedView{view, std::move(out), std::move(view_to_base)};
}

}  // namespace

Result<MaterializedView> Materialize(const PropertyGraph& base,
                                     const ViewDefinition& view) {
  if (IsConnector(view.kind)) return MaterializeConnector(base, view);
  if (view.kind == ViewKind::kVertexAggregatorSummarizer ||
      view.kind == ViewKind::kSubgraphAggregatorSummarizer) {
    return MaterializeVertexAggregator(base, view);
  }
  return MaterializeSummarizer(base, view);
}

}  // namespace kaskade::core
