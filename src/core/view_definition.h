/// \file view_definition.h
/// \brief Graph view definitions: connectors (Table I) and summarizers
/// (Table II).
///
/// A graph view is a graph query against the base graph whose result is
/// itself a graph (§III-C). `ViewDefinition` is the engine-facing record
/// of one instantiated view template: enough information to (a) estimate
/// its size (§V-A), (b) materialize it (§V-B), and (c) rewrite queries
/// over it (§V-C).

#ifndef KASKADE_CORE_VIEW_DEFINITION_H_
#define KASKADE_CORE_VIEW_DEFINITION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/property_value.h"

namespace kaskade::core {

/// \brief The view families of Tables I and II.
enum class ViewKind {
  // Connectors (Table I).
  kKHopConnector,            ///< Edges contract exactly-k-hop paths.
  kSameVertexTypeConnector,  ///< Variable-length paths between one type.
  kSameEdgeTypeConnector,    ///< Paths using a single edge type.
  kSourceToSinkConnector,    ///< (source, sink) endpoint pairs.
  // Summarizers (Table II).
  kVertexInclusionSummarizer,  ///< Keep listed vertex types (+ induced edges).
  kVertexRemovalSummarizer,    ///< Drop listed vertex types (+ incident edges).
  kEdgeInclusionSummarizer,    ///< Keep listed edge types.
  kEdgeRemovalSummarizer,      ///< Drop listed edge types.
  kVertexAggregatorSummarizer, ///< Group one type's vertices into supervertices.
  kSubgraphAggregatorSummarizer, ///< Group whole subgraphs (all types) by a
                                 ///< property into supervertices.
};

/// Human-readable name of a view kind.
const char* ViewKindName(ViewKind kind);

/// True for the connector half of the taxonomy.
bool IsConnector(ViewKind kind);

/// \brief Comparison operator of a summarizer property predicate
/// (paper footnote 5: summarizer views may also filter on vertex/edge
/// properties, not just types).
enum class PredicateOp { kNone, kEq, kNe, kLt, kLe, kGt, kGe };

/// Renders "=", "<>", "<", ... for display.
const char* PredicateOpName(PredicateOp op);

/// Evaluates `lhs <op> rhs` under PropertyValue ordering.
bool EvalPredicate(const graph::PropertyValue& lhs, PredicateOp op,
                   const graph::PropertyValue& rhs);

/// \brief One instantiated graph view.
struct ViewDefinition {
  ViewKind kind = ViewKind::kKHopConnector;

  // --- connector parameters -------------------------------------------
  /// Exact hop count for k-hop connectors; upper bound for
  /// variable-length connectors.
  int k = 2;
  /// Endpoint vertex types (empty = untyped endpoints).
  std::string source_type;
  std::string target_type;
  /// For kSameEdgeTypeConnector: the single edge type paths may use.
  std::string path_edge_type;

  // --- summarizer parameters -------------------------------------------
  /// Vertex or edge type names listed by inclusion/removal summarizers.
  std::vector<std::string> type_list;
  /// For kVertexAggregatorSummarizer: group vertices of `source_type` by
  /// this property; all numeric vertex properties are summed per group.
  std::string group_by_property;
  /// Optional property predicate (footnote 5): for vertex filters it
  /// applies to vertices of the types the filter keeps; for edge filters
  /// to kept edges. Elements failing the predicate are dropped.
  std::string predicate_property;
  PredicateOp predicate_op = PredicateOp::kNone;
  graph::PropertyValue predicate_value;

  bool has_predicate() const { return predicate_op != PredicateOp::kNone; }

  /// Name of the edge type the materialized view introduces (connectors
  /// only), e.g. "2_HOP_JOB_TO_JOB". Defaults from `DefaultName()` when
  /// empty.
  std::string connector_edge_name;

  /// Canonical unique view name, e.g. "khop2[Job->Job]" or
  /// "vinc[Job,File]"; used for deduplication and catalog keys.
  std::string Name() const;

  /// Edge type name the materialized connector introduces (resolves the
  /// default when `connector_edge_name` is empty).
  std::string EdgeName() const;

  /// Renders the view as the Cypher-ish creation query the paper's
  /// workload analyzer would send to the graph engine (§V-B), e.g.
  /// `MATCH (x:Job)-[*2..2]->(y:Job) MERGE (x)-[:2_HOP_JOB_TO_JOB]->(y)`.
  std::string ToCypher() const;

  /// Serializes the definition to a single `key=value`-token line (no
  /// trailing newline), using the shared serialization codecs. This is
  /// the persisted form checkpoints store so recovery can re-materialize
  /// every catalog view from its definition.
  std::string ToRecord() const;

  /// Parses a line written by `ToRecord`.
  static Result<ViewDefinition> FromRecord(const std::string& record);

  bool operator==(const ViewDefinition& other) const {
    return Name() == other.Name();
  }
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_VIEW_DEFINITION_H_
