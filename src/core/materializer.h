/// \file materializer.h
/// \brief View materialization: executes a `ViewDefinition` against a base
/// graph and produces the view graph (§V-B).
///
/// Connectors delegate to the path-contraction engine in `src/graph`;
/// summarizers are evaluated directly (type filters and aggregations).
/// In the paper this step translates the Prolog instantiation to Cypher
/// and runs it on Neo4j; here the translation target is our own substrate.

#ifndef KASKADE_CORE_MATERIALIZER_H_
#define KASKADE_CORE_MATERIALIZER_H_

#include "common/result.h"
#include "core/view_definition.h"
#include "graph/property_graph.h"

namespace kaskade::core {

/// \brief A materialized graph view: the physical data object of §III-C.
struct MaterializedView {
  ViewDefinition definition;
  graph::PropertyGraph graph;
  /// Base-graph vertex id per view vertex (lineage; vertices also carry
  /// an "orig_id" property).
  std::vector<graph::VertexId> view_to_base;
};

/// Materializes `view` over `base`. Fails with InvalidArgument when the
/// definition references unknown types or is internally inconsistent.
Result<MaterializedView> Materialize(const graph::PropertyGraph& base,
                                     const ViewDefinition& view);

}  // namespace kaskade::core

#endif  // KASKADE_CORE_MATERIALIZER_H_
