/// \file fact_extractor.h
/// \brief Explicit-constraint extraction (§IV-A1): transforms the query's
/// MATCH clause and the graph schema into Prolog facts.
///
/// For the job blast-radius query (Lst. 1) this emits exactly the facts
/// shown in the paper: `queryVertex/1`, `queryVertexType/2`,
/// `queryEdge/2`, `queryEdgeType/3`, `queryVariableLengthPath/4`,
/// `schemaVertex/1`, and `schemaEdge/3`.

#ifndef KASKADE_CORE_FACT_EXTRACTOR_H_
#define KASKADE_CORE_FACT_EXTRACTOR_H_

#include "common/status.h"
#include "graph/schema.h"
#include "prolog/knowledge_base.h"
#include "query/ast.h"

namespace kaskade::core {

/// Emits the explicit query facts of §IV-A1 for the query's innermost
/// MATCH clause into `kb`.
Status ExtractQueryFacts(const query::Query& q, prolog::KnowledgeBase* kb);

/// Emits facts for a MATCH clause directly.
Status ExtractMatchFacts(const query::MatchQuery& match,
                         prolog::KnowledgeBase* kb);

/// Emits the explicit schema facts of §IV-A1 into `kb`.
Status ExtractSchemaFacts(const graph::GraphSchema& schema,
                          prolog::KnowledgeBase* kb);

}  // namespace kaskade::core

#endif  // KASKADE_CORE_FACT_EXTRACTOR_H_
