/// \file rules.h
/// \brief Kaskade's library of constraint-mining rules and view templates,
/// expressed in Prolog (§IV, Listings 2, 3, 5, 6).
///
/// Fidelity notes versus the paper's listings:
///  - Lst. 3's `kHopConnector` body writes `schemaKHopPath(XTYPE, TYPE,
///    K)`; `TYPE` is an obvious typo for `YTYPE` and is fixed here.
///  - Lst. 2's `schemaKHopPath` keeps a trail of *visited vertex types*,
///    which makes it enumerate only type-acyclic schema paths. That
///    contradicts the paper's own §IV-B example, where K = 2,4,6,8,10
///    job-to-job connectors are enumerated over a two-type schema (those
///    walks revisit types). We therefore provide both: `schemaKHopPath`
///    exactly as printed (terminates even with K unbound), and
///    `schemaKHopWalk`, a count-down variant that permits type revisits
///    and terminates whenever K is bound — which it always is inside view
///    templates because the query constraints bind K first. This is
///    precisely the paper's point about injecting query constraints to
///    bound the schema search.
///  - Lst. 3's `connectorSameVertexType`/`sourceToSinkConnector` write
///    `schemaPath(X, Y)` over query vertices; the schema check must be
///    over their *types*, fixed here.

#ifndef KASKADE_CORE_RULES_H_
#define KASKADE_CORE_RULES_H_

namespace kaskade::core {

/// Schema constraint-mining rules (Lst. 2 plus the walk variant and
/// schemaPath).
const char* SchemaConstraintRules();

/// Query constraint-mining rules (Lst. 6 verbatim: k-hop paths, paths,
/// source/sink, degree rules).
const char* QueryConstraintRules();

/// Connector view templates (Lst. 3, with the typo fixes noted above).
const char* ConnectorViewTemplates();

/// Summarizer view templates (Lst. 5 verbatim plus the schema-driven
/// inclusion/removal templates Kaskade's evaluation uses).
const char* SummarizerViewTemplates();

/// All of the above concatenated (what the view enumerator consults).
const char* AllRules();

}  // namespace kaskade::core

#endif  // KASKADE_CORE_RULES_H_
