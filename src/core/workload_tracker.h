/// \file workload_tracker.h
/// \brief `WorkloadTracker`: a striped, lock-cheap recorder of the query
/// workload the engine actually serves.
///
/// The paper's workload analyzer (§V-B) consumes a query workload with
/// per-query importance weights ("frequency or expected execution
/// time"). In the original reproduction that workload had to be handed
/// in explicitly; the tracker closes the loop by observing every
/// `Engine::Execute` / `ExecuteBatch` call — canonical query text,
/// execution count, measured latency, the planner's estimated cost, and
/// view-hit provenance — so the advisor (`core/advisor.h`) can re-run
/// view selection against what the system is *really* asked, not what
/// someone predicted.
///
/// Concurrency: `Record` is called on the engine's read (query) path by
/// many threads at once, so it must be cheap and must not serialize
/// readers behind one mutex. Records are hash-striped: each stripe has
/// its own mutex and aggregation map, so two concurrent recorders only
/// contend when their query texts land in the same stripe. `Snapshot`
/// locks stripes one at a time — recorders keep making progress while a
/// snapshot is being read, and the snapshot is a consistent per-stripe
/// (not globally atomic) merge, which is all frequency-based advice
/// needs.

#ifndef KASKADE_CORE_WORKLOAD_TRACKER_H_
#define KASKADE_CORE_WORKLOAD_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace kaskade::core {

/// \brief Aggregated observations for one canonical query text.
struct QueryObservation {
  std::string query_text;        ///< Canonical (parsed-and-rendered) text.
  uint64_t executions = 0;       ///< Times the query ran successfully.
  double total_latency_us = 0;   ///< Sum of measured execution latencies.
  double total_estimated_cost = 0;  ///< Sum of planner cost estimates.
  uint64_t view_hits = 0;        ///< Executions served by a view rewrite.
  std::string last_view;         ///< View that served the last view hit.
  /// Executions served as members of a fused batch group (one shared
  /// traversal per plan shape, query/fused_runner.h) rather than a solo
  /// run — how much of this query's traffic cross-query fusion absorbs.
  uint64_t fused_hits = 0;

  double mean_latency_us() const {
    return executions == 0 ? 0 : total_latency_us / double(executions);
  }
};

/// \brief A merged, point-in-time copy of the tracker state.
struct WorkloadSnapshot {
  /// One entry per distinct canonical query text, sorted by descending
  /// execution count (ties broken by text) so consumers are
  /// deterministic.
  std::vector<QueryObservation> entries;
  uint64_t total_executions = 0;
};

/// \brief Striped workload recorder. All methods are thread-safe.
class WorkloadTracker {
 public:
  explicit WorkloadTracker(size_t stripes = 16);

  WorkloadTracker(const WorkloadTracker&) = delete;
  WorkloadTracker& operator=(const WorkloadTracker&) = delete;

  /// Records one successful execution of `canonical_text`. Distinct
  /// texts are bounded per stripe; once a stripe is full, executions of
  /// texts it has never seen are dropped (the established hot set keeps
  /// aggregating), so literal-heavy workloads cannot grow the tracker
  /// without bound.
  /// `fused` marks an execution that ran as a member of a fused batch
  /// group (its latency is the group's wall clock split evenly across
  /// members).
  void Record(const std::string& canonical_text, double latency_us,
              double estimated_cost, bool used_view,
              const std::string& view_name, bool fused = false);

  /// Merges every stripe into a deterministic snapshot. Concurrent
  /// `Record` calls are never blocked for the whole merge (stripes are
  /// locked one at a time).
  WorkloadSnapshot Snapshot() const;

  /// Drops all recorded observations.
  void Clear();

  /// Exponentially decays every observation: execution and view-hit
  /// counts and the latency/cost aggregates are scaled by `factor` (in
  /// [0, 1]), and entries whose execution count reaches zero are erased
  /// — cold texts lose weight round over round and eventually free
  /// their stripe capacity for new hot texts. Softer than `Clear`: the
  /// hot set keeps (faded) history across advice epochs instead of
  /// starting from nothing. Stripes are decayed one at a time, so
  /// concurrent `Record` calls keep making progress.
  void Decay(double factor);

  /// Total successful executions recorded since construction (not reset
  /// by `Clear`); cheap, for triggers and telemetry.
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Number of distinct query texts currently tracked.
  size_t distinct_queries() const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, QueryObservation> entries;
  };

  Stripe& StripeFor(const std::string& text) const {
    return stripes_[std::hash<std::string>{}(text) % stripes_.size()];
  }

  mutable std::vector<Stripe> stripes_;
  std::atomic<uint64_t> total_{0};
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_WORKLOAD_TRACKER_H_
