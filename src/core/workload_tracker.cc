#include "core/workload_tracker.h"

#include <algorithm>

namespace kaskade::core {

WorkloadTracker::WorkloadTracker(size_t stripes)
    : stripes_(std::max<size_t>(1, stripes)) {}

void WorkloadTracker::Record(const std::string& canonical_text,
                             double latency_us, double estimated_cost,
                             bool used_view, const std::string& view_name,
                             bool fused) {
  // Bound distinct texts per stripe (workloads with per-request literals
  // would otherwise grow the maps toward OOM and slow every advice
  // round). New texts past the cap are not tracked — the established
  // hot set, which is what advice is about, keeps aggregating.
  constexpr size_t kMaxDistinctPerStripe = 4096;
  Stripe& stripe = StripeFor(canonical_text);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.entries.size() >= kMaxDistinctPerStripe &&
        stripe.entries.find(canonical_text) == stripe.entries.end()) {
      return;
    }
    QueryObservation& obs = stripe.entries[canonical_text];
    if (obs.executions == 0) obs.query_text = canonical_text;
    ++obs.executions;
    obs.total_latency_us += latency_us;
    obs.total_estimated_cost += estimated_cost;
    if (used_view) {
      ++obs.view_hits;
      obs.last_view = view_name;
    }
    if (fused) ++obs.fused_hits;
  }
  total_.fetch_add(1, std::memory_order_relaxed);
}

WorkloadSnapshot WorkloadTracker::Snapshot() const {
  WorkloadSnapshot snapshot;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [text, obs] : stripe.entries) {
      snapshot.entries.push_back(obs);
      snapshot.total_executions += obs.executions;
    }
  }
  std::sort(snapshot.entries.begin(), snapshot.entries.end(),
            [](const QueryObservation& a, const QueryObservation& b) {
              if (a.executions != b.executions) {
                return a.executions > b.executions;
              }
              return a.query_text < b.query_text;
            });
  return snapshot;
}

void WorkloadTracker::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.entries.clear();
  }
}

void WorkloadTracker::Decay(double factor) {
  factor = std::clamp(factor, 0.0, 1.0);
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (auto it = stripe.entries.begin(); it != stripe.entries.end();) {
      QueryObservation& obs = it->second;
      // Truncating keeps counts integral and guarantees progress: any
      // factor < 1 eventually drives an un-refreshed count to zero.
      obs.executions = uint64_t(double(obs.executions) * factor);
      obs.view_hits = uint64_t(double(obs.view_hits) * factor);
      obs.fused_hits = uint64_t(double(obs.fused_hits) * factor);
      obs.total_latency_us *= factor;
      obs.total_estimated_cost *= factor;
      if (obs.executions == 0) {
        it = stripe.entries.erase(it);
      } else {
        ++it;
      }
    }
  }
}

size_t WorkloadTracker::distinct_queries() const {
  size_t count = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    count += stripe.entries.size();
  }
  return count;
}

}  // namespace kaskade::core
