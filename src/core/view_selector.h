/// \file view_selector.h
/// \brief View selection (§V-B): the workload analyzer.
///
/// Given a query workload, enumerate candidate views (§IV), score each
/// candidate as
///
///   value(v) = sum_q weight_q * [cost(q) / cost(rewrite(q, v))]
///              ------------------------------------------------
///                           creation_cost(v)
///
/// (zero contribution from queries v cannot serve), weight(v) = estimated
/// view size, and solve 0-1 knapsack against the space budget.

#ifndef KASKADE_CORE_VIEW_SELECTOR_H_
#define KASKADE_CORE_VIEW_SELECTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/cost_model.h"
#include "core/enumerator.h"
#include "core/knapsack.h"
#include "core/view_definition.h"
#include "query/ast.h"

namespace kaskade::core {

/// \brief A workload query with an optional importance weight (frequency
/// or expected execution time, §V-B).
struct WorkloadEntry {
  query::Query query;
  double weight = 1.0;
};

/// \brief A scored candidate view.
struct ScoredView {
  ViewDefinition definition;
  double estimated_size_edges = 0;
  double creation_cost = 0;
  /// Sum over workload queries of weighted cost ratios.
  double improvement = 0;
  /// Knapsack value: improvement / creation cost, multiplied by the
  /// hysteresis boost for views that are already materialized.
  double value = 0;
  /// Number of workload queries this view can serve.
  size_t applicable_queries = 0;
  /// True when the view was already materialized when selection ran
  /// (see `SelectionContext`): its value carries the hysteresis boost
  /// and dropping it (rather than not creating it) is what
  /// non-selection means.
  bool currently_materialized = false;
};

/// \brief Output of view selection.
struct SelectionReport {
  std::vector<ScoredView> selected;
  std::vector<ScoredView> candidates;  ///< All candidates with scores.
  double budget_edges = 0;
  double selected_size_edges = 0;
};

/// \brief Selection configuration.
struct SelectorOptions {
  /// Space budget in view edges (the paper budgets a fraction of memory;
  /// edges dominate the footprint).
  double budget_edges = 1e7;
  EnumeratorOptions enumerator;
  CostModelOptions cost;
  /// Use the greedy heuristic instead of branch-and-bound (ablation).
  bool use_greedy = false;
};

/// \brief What is already materialized when a selection round runs.
///
/// Online advice re-runs selection against an evolving observed
/// workload, so currently-materialized views re-enter the candidate set
/// even when the present workload would not have enumerated them (their
/// queries may have stopped arriving — that is exactly the drop signal).
/// Their knapsack value is multiplied by `keep_boost` (> 1), a
/// hysteresis margin: a challenger must beat an incumbent by the boost
/// factor before the advisor will swap them, so marginal views do not
/// thrash between adjacent advice rounds. On an unchanged workload the
/// boost scales every member of the previous optimal selection
/// uniformly, so that selection stays optimal and advice is stable.
struct SelectionContext {
  std::vector<ViewDefinition> materialized;
  /// Neutral by default; the advisor supplies its hysteresis margin
  /// (`AdvisorOptions::keep_boost` is the one home of that constant).
  double keep_boost = 1.0;
};

/// \brief The workload analyzer.
class ViewSelector {
 public:
  ViewSelector(const graph::PropertyGraph* base, SelectorOptions options = {})
      : base_(base), options_(options), cost_model_(base, options.cost) {}

  /// Enumerates, scores, and selects views for `workload`.
  Result<SelectionReport> Select(const std::vector<WorkloadEntry>& workload);

  /// As above, with hysteresis against the currently-materialized views
  /// in `context` (each re-enters the candidate set and carries the
  /// keep boost).
  Result<SelectionReport> Select(const std::vector<WorkloadEntry>& workload,
                                 const SelectionContext& context);

  const CostModel& cost_model() const { return cost_model_; }

 private:
  const graph::PropertyGraph* base_;
  SelectorOptions options_;
  CostModel cost_model_;
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_VIEW_SELECTOR_H_
