#include "core/enumerator.h"

#include <set>

#include "core/fact_extractor.h"
#include "core/rules.h"
#include "prolog/knowledge_base.h"

namespace kaskade::core {

using prolog::Solution;
using prolog::Solver;
using prolog::TermPtr;

namespace {

/// Extracts an atom binding from a solution, or "" when absent/unbound.
std::string AtomOf(const Solution& s, const std::string& var) {
  auto it = s.bindings.find(var);
  if (it == s.bindings.end()) return "";
  return it->second->is_atom() ? it->second->name() : "";
}

int64_t IntOf(const Solution& s, const std::string& var, int64_t fallback) {
  auto it = s.bindings.find(var);
  if (it == s.bindings.end() || !it->second->is_int()) return fallback;
  return it->second->int_value();
}

}  // namespace

Result<std::vector<CandidateView>> ViewEnumerator::Enumerate(
    const query::Query& q, EnumerationStats* stats) {
  prolog::KnowledgeBase kb;
  KASKADE_RETURN_IF_ERROR(kb.Consult(AllRules()));
  KASKADE_RETURN_IF_ERROR(ExtractSchemaFacts(*schema_, &kb));
  KASKADE_RETURN_IF_ERROR(ExtractQueryFacts(q, &kb));

  Solver solver(&kb, options_.solver_options);
  std::vector<CandidateView> candidates;
  std::set<std::string> seen;
  EnumerationStats local_stats;

  auto add = [&](ViewDefinition def, const Solution& s) {
    ++local_stats.instantiations;
    CandidateView cand;
    cand.definition = std::move(def);
    cand.query_vertex_x = AtomOf(s, "X");
    cand.query_vertex_y = AtomOf(s, "Y");
    if (seen.insert(cand.definition.Name()).second) {
      candidates.push_back(std::move(cand));
      ++local_stats.candidates;
    }
  };

  // --- k-hop connectors (Lst. 3) ---------------------------------------
  {
    Result<std::vector<Solution>> sols =
        solver.QueryAll("kHopConnector(X, Y, XTYPE, YTYPE, K), K =< " +
                        std::to_string(options_.max_k) + ".");
    if (!sols.ok()) return sols.status();
    local_stats.inference_steps += solver.steps_used();
    for (const Solution& s : *sols) {
      ViewDefinition def;
      def.kind = ViewKind::kKHopConnector;
      def.k = static_cast<int>(IntOf(s, "K", 0));
      def.source_type = AtomOf(s, "XTYPE");
      def.target_type = AtomOf(s, "YTYPE");
      if (def.k < 1) continue;
      add(std::move(def), s);
    }
  }

  // --- same-vertex-type variable-length connectors ----------------------
  {
    Result<std::vector<Solution>> sols =
        solver.QueryAll("connectorSameVertexType(X, Y, VTYPE).");
    if (!sols.ok()) return sols.status();
    local_stats.inference_steps += solver.steps_used();
    for (const Solution& s : *sols) {
      ViewDefinition def;
      def.kind = ViewKind::kSameVertexTypeConnector;
      def.k = options_.max_k;  // bounded contraction depth
      def.source_type = AtomOf(s, "VTYPE");
      def.target_type = def.source_type;
      add(std::move(def), s);
    }
  }

  // --- same-edge-type connectors -----------------------------------------
  {
    Result<std::vector<Solution>> sols =
        solver.QueryAll("sameEdgeTypeConnector(X, Y, ETYPE).");
    if (!sols.ok()) return sols.status();
    local_stats.inference_steps += solver.steps_used();
    for (const Solution& s : *sols) {
      ViewDefinition def;
      def.kind = ViewKind::kSameEdgeTypeConnector;
      def.k = options_.max_k;
      def.path_edge_type = AtomOf(s, "ETYPE");
      if (def.path_edge_type.empty()) continue;
      // Endpoint types follow from the edge type's declaration.
      graph::EdgeTypeId et = schema_->FindEdgeType(def.path_edge_type);
      if (et != graph::kInvalidTypeId) {
        const graph::EdgeTypeDecl& decl = schema_->edge_type(et);
        def.source_type = schema_->vertex_type_name(decl.source_type);
        def.target_type = schema_->vertex_type_name(decl.target_type);
      }
      add(std::move(def), s);
    }
  }

  // --- source-to-sink connectors ----------------------------------------
  {
    Result<std::vector<Solution>> sols =
        solver.QueryAll("sourceToSinkConnector(X, Y).");
    if (!sols.ok()) return sols.status();
    local_stats.inference_steps += solver.steps_used();
    for (const Solution& s : *sols) {
      ViewDefinition def;
      def.kind = ViewKind::kSourceToSinkConnector;
      def.k = options_.max_k;
      // The endpoint types come from the query vertices when declared.
      Solver type_solver(&kb, options_.solver_options);
      Result<std::vector<Solution>> xt = type_solver.QueryAll(
          "queryVertexType(" + AtomOf(s, "X") + ", T).");
      if (xt.ok() && !xt->empty()) def.source_type = AtomOf(xt->front(), "T");
      Result<std::vector<Solution>> yt = type_solver.QueryAll(
          "queryVertexType(" + AtomOf(s, "Y") + ", T).");
      if (yt.ok() && !yt->empty()) def.target_type = AtomOf(yt->front(), "T");
      add(std::move(def), s);
    }
  }

  if (options_.enumerate_summarizers) {
    // --- vertex-inclusion summarizer (schema-level filter) --------------
    {
      Result<std::vector<Solution>> sols =
          solver.QueryAll("vertexInclusionSummarizer(TYPES).");
      if (!sols.ok()) return sols.status();
      local_stats.inference_steps += solver.steps_used();
      for (const Solution& s : *sols) {
        auto it = s.bindings.find("TYPES");
        if (it == s.bindings.end()) continue;
        std::vector<TermPtr> items;
        if (!prolog::Term::ListItems(it->second, &items)) continue;
        ViewDefinition def;
        def.kind = ViewKind::kVertexInclusionSummarizer;
        for (const TermPtr& t : items) {
          if (t->is_atom()) def.type_list.push_back(t->name());
        }
        if (def.type_list.empty()) continue;
        // Skip when the filter keeps every type (no reduction).
        if (def.type_list.size() >= schema_->num_vertex_types()) continue;
        add(std::move(def), s);
      }
    }
    // --- edge-removal summarizer ---------------------------------------
    {
      Result<std::vector<Solution>> sols =
          solver.QueryAll("edgeRemovalSummarizer(ETYPE).");
      if (!sols.ok()) return sols.status();
      local_stats.inference_steps += solver.steps_used();
      // Collect all removable edge types into one view.
      ViewDefinition def;
      def.kind = ViewKind::kEdgeRemovalSummarizer;
      std::set<std::string> types;
      for (const Solution& s : *sols) {
        std::string t = AtomOf(s, "ETYPE");
        if (!t.empty()) types.insert(t);
      }
      def.type_list.assign(types.begin(), types.end());
      if (!def.type_list.empty() && !sols->empty()) {
        add(std::move(def), sols->front());
      }
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return candidates;
}

Result<uint64_t> ViewEnumerator::CountUnconstrainedSchemaWalks(
    int max_k, uint64_t* steps) {
  prolog::KnowledgeBase kb;
  KASKADE_RETURN_IF_ERROR(kb.Consult(SchemaConstraintRules()));
  KASKADE_RETURN_IF_ERROR(ExtractSchemaFacts(*schema_, &kb));
  Solver solver(&kb, options_.solver_options);
  // Each schema walk has exactly one derivation, so the proof count is
  // the walk count: sum over k of the k-length schema walks, the >= M^k
  // space the paper describes for cyclic schemas (§IV-A2).
  uint64_t count = 0;
  Result<size_t> n = solver.Query(
      "between(1, " + std::to_string(max_k) + ", K), schemaKHopWalk(X, Y, K).",
      [&](const Solution&) {
        ++count;
        return true;
      });
  if (!n.ok()) return n.status();
  if (steps != nullptr) *steps = solver.steps_used();
  return count;
}

uint64_t ViewEnumerator::ProceduralKHopSchemaPaths(
    const graph::GraphSchema& schema, int k) {
  // Alg. 1 (appendix): build paths level by level from all schema edges,
  // extending at both ends, deduplicating each round.
  using Edge = std::pair<graph::VertexTypeId, graph::VertexTypeId>;
  std::vector<Edge> schema_edges;
  for (const graph::EdgeTypeDecl& decl : schema.edge_types()) {
    schema_edges.emplace_back(decl.source_type, decl.target_type);
  }
  std::set<std::vector<Edge>> paths;
  for (const Edge& e : schema_edges) paths.insert({e});
  for (int round = 1; round < k; ++round) {
    std::set<std::vector<Edge>> next_paths;
    for (const std::vector<Edge>& path : paths) {
      graph::VertexTypeId src = path.front().first;
      graph::VertexTypeId dst = path.back().second;
      for (const Edge& e : schema_edges) {
        if (dst == e.first) {
          std::vector<Edge> grown = path;
          grown.push_back(e);
          next_paths.insert(std::move(grown));
        }
        if (src == e.second) {
          std::vector<Edge> grown;
          grown.reserve(path.size() + 1);
          grown.push_back(e);
          grown.insert(grown.end(), path.begin(), path.end());
          next_paths.insert(std::move(grown));
        }
      }
    }
    paths = std::move(next_paths);
    if (paths.empty()) break;
  }
  return static_cast<uint64_t>(paths.size());
}

}  // namespace kaskade::core
