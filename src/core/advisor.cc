#include "core/advisor.h"

#include <algorithm>
#include <utility>

#include "query/parser.h"

namespace kaskade::core {

Result<AdvicePlan> Advisor::Advise(const WorkloadSnapshot& workload,
                                   const ViewCatalog& catalog) const {
  std::vector<WorkloadEntry> entries;
  entries.reserve(workload.entries.size());
  size_t observed = 0;
  uint64_t executions = 0;
  // Admit observations first (noise floor + parseability), then weight:
  // expected-execution-time weighting imputes the *admitted* workload's
  // execution-weighted mean latency for observations that carry none (a
  // caller-built snapshot, say), so every weight stays in the same unit
  // — raw counts would be negligible next to microsecond-scale weights,
  // and latencies of rejected (stale/below-floor) observations must not
  // skew the mean.
  std::vector<const QueryObservation*> admitted;
  for (const QueryObservation& obs : workload.entries) {
    if (obs.executions < options_.min_executions) continue;
    Result<query::Query> parsed = query::ParseQueryText(obs.query_text);
    if (!parsed.ok()) continue;  // never executed successfully; stale text
    entries.push_back(WorkloadEntry{std::move(*parsed), 0.0});
    admitted.push_back(&obs);
    ++observed;
    executions += obs.executions;
  }
  double imputed_latency_us = 0;
  if (options_.weighting == AdviceWeighting::kExpectedExecutionTime) {
    double measured_us = 0;
    uint64_t measured_execs = 0;
    for (const QueryObservation* obs : admitted) {
      if (obs->total_latency_us <= 0) continue;
      measured_us += obs->total_latency_us;
      measured_execs += obs->executions;
    }
    if (measured_execs > 0) imputed_latency_us = measured_us / measured_execs;
  }
  for (size_t i = 0; i < admitted.size(); ++i) {
    const QueryObservation& obs = *admitted[i];
    double weight = static_cast<double>(obs.executions);
    if (options_.weighting == AdviceWeighting::kExpectedExecutionTime) {
      // Frequency x measured mean latency: the query's total observed
      // execution time. Scale is irrelevant to the knapsack (values are
      // compared against each other), so raw microseconds are fine.
      // When nothing admitted carries a latency, imputation yields 0
      // and the round degrades to frequency weighting.
      if (obs.total_latency_us > 0) {
        weight = obs.total_latency_us;
      } else if (imputed_latency_us > 0) {
        weight = static_cast<double>(obs.executions) * imputed_latency_us;
      }
    }
    entries[i].weight = weight;
  }
  KASKADE_ASSIGN_OR_RETURN(AdvicePlan plan, AdviseWorkload(entries, catalog));
  plan.observed_queries = observed;
  plan.observed_executions = executions;
  return plan;
}

Result<AdvicePlan> Advisor::AdviseWorkload(
    const std::vector<WorkloadEntry>& workload,
    const ViewCatalog& catalog) const {
  SelectionContext context;
  context.keep_boost = options_.keep_boost;
  for (const CatalogEntry* entry : catalog.Entries()) {
    // Entries mid-build count as incumbents too: re-advising while a
    // build is in flight must not schedule the same view twice.
    if (entry->state == ViewState::kDropping) continue;
    context.materialized.push_back(entry->view.definition);
  }

  ViewSelector selector(base_, options_.selector);
  AdvicePlan plan;
  KASKADE_ASSIGN_OR_RETURN(plan.selection,
                           selector.Select(workload, context));
  plan.observed_queries = workload.size();

  // Drops: exactly the incumbents no observed query can use;
  // incumbents that merely lost the knapsack stay (hysteresis — a
  // transiently quiet-but-used view must not thrash). An *empty*
  // observed workload is absence of signal, not evidence the views are
  // useless — proposing drops from it would nuke the catalog every
  // time an advice round fires before traffic (or right after a
  // tracker reset).
  if (!workload.empty()) {
    for (const ScoredView& scored : plan.selection.candidates) {
      if (scored.currently_materialized && scored.applicable_queries == 0) {
        plan.drop.push_back(scored.definition.Name());
      }
    }
  }
  // The knapsack may admit zero-value items when capacity is spare;
  // they pay for no observed query and are not worth materializing (or
  // keeping — a zero-applicable incumbent is in `drop` above). Filter
  // them from the selection itself, not just from `create`, so
  // "selected" always means "is, or is about to be, queryable".
  auto& selected = plan.selection.selected;
  selected.erase(
      std::remove_if(selected.begin(), selected.end(),
                     [&](const ScoredView& scored) {
                       return scored.applicable_queries == 0 &&
                              (!scored.currently_materialized ||
                               !workload.empty());
                     }),
      selected.end());
  plan.selection.selected_size_edges = 0;
  for (const ScoredView& scored : selected) {
    plan.selection.selected_size_edges += scored.estimated_size_edges;
    if (!scored.currently_materialized) {
      plan.create.push_back(scored.definition);
    }
  }
  // Budget enforcement across rounds: hysteresis keeps unselected
  // incumbents that still serve queries, and their re-estimated sizes
  // grow with the base graph — so the surviving set (selected + kept)
  // can creep past the budget round over round even though each round's
  // *selection* respects it. Evict the lowest-value kept incumbents
  // until the survivors fit again. The selected set alone always fits
  // (the knapsack guarantees it), so eviction never has to touch a
  // selected view. Skipped for an empty workload for the same reason as
  // the zero-applicable drops above: no signal is not a mandate to
  // shrink the catalog.
  if (!workload.empty()) {
    auto is_selected = [&](const std::string& name) {
      for (const ScoredView& scored : selected) {
        if (scored.definition.Name() == name) return true;
      }
      return false;
    };
    auto is_dropped = [&](const std::string& name) {
      return std::find(plan.drop.begin(), plan.drop.end(), name) !=
             plan.drop.end();
    };
    std::vector<const ScoredView*> kept;
    double survivor_size = plan.selection.selected_size_edges;
    for (const ScoredView& scored : plan.selection.candidates) {
      if (!scored.currently_materialized) continue;
      const std::string name = scored.definition.Name();
      if (is_selected(name) || is_dropped(name)) continue;
      kept.push_back(&scored);
      survivor_size += scored.estimated_size_edges;
    }
    std::sort(kept.begin(), kept.end(),
              [](const ScoredView* a, const ScoredView* b) {
                if (a->value != b->value) return a->value < b->value;
                return a->definition.Name() < b->definition.Name();
              });
    for (const ScoredView* victim : kept) {
      if (survivor_size <= options_.selector.budget_edges) break;
      plan.drop.push_back(victim->definition.Name());
      survivor_size -= victim->estimated_size_edges;
    }
  }
  return plan;
}

}  // namespace kaskade::core
