#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace kaskade::core {

namespace {
constexpr double kCostCap = 1e30;

/// Mean out-degree of the live graph, floored so degree^k never
/// collapses to zero on sparse graphs.
double MeanDegree(const graph::PropertyGraph& base) {
  double vertices = static_cast<double>(base.NumLiveVertices());
  if (vertices < 1) return 0.5;
  return std::max(static_cast<double>(base.NumLiveEdges()) / vertices, 0.5);
}

double PowClamped(double base_value, int exponent) {
  double out = 1;
  for (int i = 0; i < exponent; ++i) {
    out *= base_value;
    if (out > kCostCap) return kCostCap;
  }
  return out;
}

}  // namespace

double CostModel::QueryCostOnCandidateView(const query::Query& rewritten,
                                           const ViewDefinition& view) const {
  const query::MatchQuery* match = rewritten.InnermostMatch();
  if (match == nullptr) return kCostCap;

  // Predicted profile of the candidate view: vertex count from the base
  // graph's endpoint-type cardinalities, edge count from the *central*
  // size estimate (see CostModelOptions::improvement_alpha), degree as
  // their ratio.
  double edges = std::max(
      EstimateViewSizeEdges(*base_, stats_, view, options_.improvement_alpha),
      1.0);
  double vertices = 0;
  if (IsConnector(view.kind)) {
    graph::VertexTypeId src = base_->schema().FindVertexType(view.source_type);
    graph::VertexTypeId dst = base_->schema().FindVertexType(view.target_type);
    if (src != graph::kInvalidTypeId) {
      vertices += static_cast<double>(base_->NumVerticesOfType(src));
    }
    if (dst != graph::kInvalidTypeId && dst != src) {
      vertices += static_cast<double>(base_->NumVerticesOfType(dst));
    }
    if (vertices == 0) {
      vertices = static_cast<double>(base_->NumLiveVertices());
    }
  } else {
    for (const std::string& t : view.type_list) {
      graph::VertexTypeId id = base_->schema().FindVertexType(t);
      if (id != graph::kInvalidTypeId) {
        vertices += static_cast<double>(base_->NumVerticesOfType(id));
      }
    }
    if (view.kind == ViewKind::kVertexRemovalSummarizer) {
      vertices = static_cast<double>(base_->NumLiveVertices()) - vertices;
    }
    if (vertices <= 0) {
      vertices = static_cast<double>(base_->NumLiveVertices());
    }
  }
  double degree = std::max(edges / std::max(vertices, 1.0), 0.1);

  // Seeds: cardinality of the first pattern node's type in the view.
  double seeds = vertices;
  if (!match->nodes.empty() && !match->nodes.front().type.empty()) {
    graph::VertexTypeId type =
        base_->schema().FindVertexType(match->nodes.front().type);
    if (type != graph::kInvalidTypeId) {
      seeds = static_cast<double>(base_->NumVerticesOfType(type));
    }
  }
  seeds = std::max(seeds, 1.0);

  double cost = query::MatchCostOnCounts(
      *match, seeds, vertices, edges,
      [degree](const std::string&) { return degree; });
  // Relational layers add a small linear factor, as in the base model.
  const query::Query* layer = &rewritten;
  while (layer->is_select()) {
    cost = std::min(cost * 1.1, kCostCap);
    layer = layer->select().from.get();
  }
  return cost;
}

double EstimateIncrementalMaintenanceCost(const graph::PropertyGraph& base,
                                          const ViewDefinition& view,
                                          size_t inserts, size_t removals) {
  // Removals pay extra for multiplicity decrements and orphan
  // collection on top of the same path enumeration.
  constexpr double kRemovalOverhead = 1.5;
  switch (view.kind) {
    case ViewKind::kKHopConnector: {
      // Per edge, the maintainer walks every split i: backward deg^i x
      // forward deg^(k-1-i) extensions, ~ k * deg^(k-1) total.
      double per_edge = std::max(1.0, static_cast<double>(view.k)) *
                        PowClamped(MeanDegree(base), view.k - 1);
      double cost = per_edge * (static_cast<double>(inserts) +
                                kRemovalOverhead *
                                    static_cast<double>(removals));
      return std::min(cost, kCostCap);
    }
    case ViewKind::kVertexInclusionSummarizer:
    case ViewKind::kVertexRemovalSummarizer:
    case ViewKind::kEdgeInclusionSummarizer:
    case ViewKind::kEdgeRemovalSummarizer:
      // Constant-time type/predicate checks either way.
      return static_cast<double>(inserts) + static_cast<double>(removals);
    default:
      // No maintainer: incremental is not an option.
      return kCostCap;
  }
}

double EstimateRematerializationCost(const graph::PropertyGraph& base,
                                     const ViewDefinition& view) {
  double vertices = static_cast<double>(base.NumLiveVertices());
  double edges = static_cast<double>(base.NumLiveEdges());
  if (IsConnector(view.kind)) {
    // Contraction enumerates up to deg^k simple paths per source vertex.
    return std::min(vertices * PowClamped(MeanDegree(base), view.k),
                    kCostCap);
  }
  // Summarizers scan every vertex and edge once.
  return vertices + edges;
}

bool PreferRematerialization(const graph::PropertyGraph& base,
                             const ViewDefinition& view, size_t inserts,
                             size_t removals) {
  return EstimateIncrementalMaintenanceCost(base, view, inserts, removals) >
         EstimateRematerializationCost(base, view);
}

}  // namespace kaskade::core
