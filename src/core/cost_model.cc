#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace kaskade::core {

namespace {
constexpr double kCostCap = 1e30;
}  // namespace

double CostModel::QueryCostOnCandidateView(const query::Query& rewritten,
                                           const ViewDefinition& view) const {
  const query::MatchQuery* match = rewritten.InnermostMatch();
  if (match == nullptr) return kCostCap;

  // Predicted profile of the candidate view: vertex count from the base
  // graph's endpoint-type cardinalities, edge count from the *central*
  // size estimate (see CostModelOptions::improvement_alpha), degree as
  // their ratio.
  double edges = std::max(
      EstimateViewSizeEdges(*base_, stats_, view, options_.improvement_alpha),
      1.0);
  double vertices = 0;
  if (IsConnector(view.kind)) {
    graph::VertexTypeId src = base_->schema().FindVertexType(view.source_type);
    graph::VertexTypeId dst = base_->schema().FindVertexType(view.target_type);
    if (src != graph::kInvalidTypeId) {
      vertices += static_cast<double>(base_->NumVerticesOfType(src));
    }
    if (dst != graph::kInvalidTypeId && dst != src) {
      vertices += static_cast<double>(base_->NumVerticesOfType(dst));
    }
    if (vertices == 0) vertices = static_cast<double>(base_->NumVertices());
  } else {
    for (const std::string& t : view.type_list) {
      graph::VertexTypeId id = base_->schema().FindVertexType(t);
      if (id != graph::kInvalidTypeId) {
        vertices += static_cast<double>(base_->NumVerticesOfType(id));
      }
    }
    if (view.kind == ViewKind::kVertexRemovalSummarizer) {
      vertices = static_cast<double>(base_->NumVertices()) - vertices;
    }
    if (vertices <= 0) vertices = static_cast<double>(base_->NumVertices());
  }
  double degree = std::max(edges / std::max(vertices, 1.0), 0.1);

  // Seeds: cardinality of the first pattern node's type in the view.
  double seeds = vertices;
  if (!match->nodes.empty() && !match->nodes.front().type.empty()) {
    graph::VertexTypeId type =
        base_->schema().FindVertexType(match->nodes.front().type);
    if (type != graph::kInvalidTypeId) {
      seeds = static_cast<double>(base_->NumVerticesOfType(type));
    }
  }
  seeds = std::max(seeds, 1.0);

  double cost = query::MatchCostOnCounts(
      *match, seeds, vertices, edges,
      [degree](const std::string&) { return degree; });
  // Relational layers add a small linear factor, as in the base model.
  const query::Query* layer = &rewritten;
  while (layer->is_select()) {
    cost = std::min(cost * 1.1, kCostCap);
    layer = layer->select().from.get();
  }
  return cost;
}

}  // namespace kaskade::core
