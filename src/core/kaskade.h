/// \file kaskade.h
/// \brief The Kaskade facade: the end-to-end graph query optimization
/// framework of Fig. 2.
///
/// Typical use:
///
/// ```cpp
/// kaskade::core::Kaskade engine(std::move(graph));
/// engine.AnalyzeWorkload({q1_text, q2_text});      // select + materialize
/// auto result = engine.Execute(q1_text);           // rewrite + run
/// std::cout << result->table.ToString();
/// ```
///
/// `AnalyzeWorkload` runs the workload analyzer (view enumeration,
/// scoring, knapsack selection) and materializes the winners. `Execute`
/// runs the query rewriter: it considers the raw graph and every
/// materialized view, picks the cheapest plan by estimated cost, and
/// executes it. The paper's single-view-per-rewrite restriction applies.

#ifndef KASKADE_CORE_KASKADE_H_
#define KASKADE_CORE_KASKADE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/maintenance.h"
#include "core/materializer.h"
#include "core/view_selector.h"
#include "graph/property_graph.h"
#include "graph/stats.h"
#include "query/executor.h"
#include "query/table.h"

namespace kaskade::core {

/// \brief Engine configuration.
struct KaskadeOptions {
  SelectorOptions selector;
  query::ExecutorOptions executor;
};

/// \brief A materialized view registered with the engine, with statistics
/// for cost-based plan choice.
struct CatalogEntry {
  MaterializedView view;
  graph::GraphStats stats;
};

/// \brief The framework facade.
class Kaskade {
 public:
  explicit Kaskade(graph::PropertyGraph base_graph, KaskadeOptions options = {})
      : base_(std::move(base_graph)),
        options_(options) {}

  const graph::PropertyGraph& base_graph() const { return base_; }
  const std::deque<CatalogEntry>& catalog() const { return catalog_; }

  /// Mutable access for appending vertices/edges (the provenance use
  /// case is append-only). Call `RefreshViews` afterwards so the
  /// materialized views reflect the additions.
  graph::PropertyGraph* mutable_base_graph() { return &base_; }

  /// Brings every materialized view up to date with the base graph:
  /// incrementally where the view kind supports it (connectors, filter
  /// summarizers), by re-materialization otherwise. Also refreshes the
  /// per-view statistics used for plan choice.
  Status RefreshViews();

  /// Workload analyzer (§V-B): selects views for the workload under the
  /// space budget and materializes them.
  Result<SelectionReport> AnalyzeWorkload(
      const std::vector<std::string>& query_texts);

  /// Materializes one view directly (bypasses selection).
  Status AddMaterializedView(const ViewDefinition& definition);

  /// \brief Outcome of executing a query, with plan provenance.
  struct ExecutionResult {
    query::Table table;
    bool used_view = false;
    std::string view_name;       ///< Set when used_view.
    std::string executed_query;  ///< The (possibly rewritten) query text.
    double estimated_cost = 0;
  };

  /// Query rewriter + execution (§V-C): evaluates `query_text` via the
  /// cheapest available plan (raw graph or one materialized view). Plan
  /// choice is cached per query text — the paper amortizes constraint
  /// extraction and view inference over repeated runs of the same query
  /// (§VII-A); the cache is invalidated when the catalog or base graph
  /// changes.
  Result<ExecutionResult> Execute(const std::string& query_text);
  Result<ExecutionResult> Execute(const query::Query& query);

  /// Plan-cache telemetry (for tests and operations).
  size_t plan_cache_hits() const { return plan_cache_hits_; }
  size_t plan_cache_misses() const { return plan_cache_misses_; }

 private:
  /// Chosen plan for one query text.
  struct PlanCacheEntry {
    std::string view_name;       ///< Empty = raw graph.
    std::string executed_query;  ///< Rendered (possibly rewritten) text.
    double estimated_cost = 0;
  };

  /// Runs the plan search (rewrite enumeration + costing); fills `entry`.
  Status ChoosePlan(const query::Query& query, PlanCacheEntry* entry);

  /// Executes a previously chosen plan.
  Result<ExecutionResult> RunPlan(const PlanCacheEntry& entry);

  graph::PropertyGraph base_;
  KaskadeOptions options_;
  /// deque: growth must not move entries — the maintainers hold pointers
  /// into them.
  std::deque<CatalogEntry> catalog_;
  std::vector<std::unique_ptr<ViewMaintainer>> maintainers_;
  std::map<std::string, PlanCacheEntry> plan_cache_;
  size_t plan_cache_hits_ = 0;
  size_t plan_cache_misses_ = 0;
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_KASKADE_H_
