/// \file kaskade.h
/// \brief DEPRECATED compatibility shim for the old monolithic `Kaskade`
/// facade.
///
/// The facade has been decomposed into first-class subsystems:
///
///   - `core/catalog.h`  — `ViewCatalog`: thread-safe registry owning
///     materialized views, their statistics, and their maintainers
///     behind stable handles, with a monotonic generation counter.
///   - `core/planner.h`  — `Planner`: plan enumeration + costing with a
///     sharded LRU plan cache keyed by (query text, catalog generation).
///   - `core/engine.h`   — `Engine`: the coordinating facade, with a
///     reader/writer concurrency discipline and batched execution.
///
/// Include those headers directly; this one only aliases the old names
/// and will be removed.

#ifndef KASKADE_CORE_KASKADE_H_
#define KASKADE_CORE_KASKADE_H_

#include "core/engine.h"

namespace kaskade::core {

using KaskadeOptions [[deprecated("use EngineOptions (core/engine.h)")]] =
    EngineOptions;

using Kaskade [[deprecated("use Engine (core/engine.h)")]] = Engine;

}  // namespace kaskade::core

#endif  // KASKADE_CORE_KASKADE_H_
