#include "core/rewriter.h"

#include <algorithm>
#include <map>
#include <set>

namespace kaskade::core {

using graph::GraphSchema;
using graph::VertexTypeId;

namespace {

Status NotApplicable(const std::string& why) {
  return Status::NotFound("view not applicable: " + why);
}

/// Union of vertex types reachable from `from` within 1..steps schema
/// walk steps (forward when `forward`, else co-reachable).
std::set<VertexTypeId> ReachableTypeUnion(const GraphSchema& schema,
                                          VertexTypeId from, int steps,
                                          bool forward) {
  std::set<VertexTypeId> current{from};
  std::set<VertexTypeId> all;
  for (int i = 0; i < steps; ++i) {
    std::set<VertexTypeId> next;
    for (const graph::EdgeTypeDecl& decl : schema.edge_types()) {
      VertexTypeId a = forward ? decl.source_type : decl.target_type;
      VertexTypeId b = forward ? decl.target_type : decl.source_type;
      if (current.count(a) > 0) next.insert(b);
    }
    if (next.empty()) break;
    all.insert(next.begin(), next.end());
    current = std::move(next);
  }
  return all;
}

/// Exact-length reachability table: result[i] is the set of vertex types
/// reachable from `from` in exactly i steps (forward) or from which
/// `from` is reachable in exactly i steps (backward).
std::vector<std::set<VertexTypeId>> ExactReachability(const GraphSchema& schema,
                                                      VertexTypeId from,
                                                      int horizon,
                                                      bool forward) {
  std::vector<std::set<VertexTypeId>> table(horizon + 1);
  table[0] = {from};
  for (int i = 1; i <= horizon; ++i) {
    for (const graph::EdgeTypeDecl& decl : schema.edge_types()) {
      VertexTypeId a = forward ? decl.source_type : decl.target_type;
      VertexTypeId b = forward ? decl.target_type : decl.source_type;
      if (table[i - 1].count(a) > 0) table[i].insert(b);
    }
    if (table[i].empty()) break;
  }
  return table;
}

/// Checks rewrite exactness condition (b) of the header: over raw path
/// lengths lr..ur between `src_type` and `dst_type`,
///  - src->dst walks can only exist at lengths divisible by k, and
///  - every such walk passes through `dst_type` (and nothing else) at
///    every multiple-of-k offset, established by intersecting the
///    forward-reachable types at the offset with the types that can
///    still reach `dst_type` in the remaining steps.
bool ConnectorCoversChain(const GraphSchema& schema, VertexTypeId src_type,
                          VertexTypeId dst_type, int k, int lr, int ur) {
  std::vector<std::set<VertexTypeId>> fwd =
      ExactReachability(schema, src_type, ur, /*forward=*/true);
  std::vector<std::set<VertexTypeId>> bwd =
      ExactReachability(schema, dst_type, ur, /*forward=*/false);
  for (int len = std::max(lr, 1); len <= ur; ++len) {
    if (fwd[len].count(dst_type) == 0) continue;  // no walk of this length
    if (len % k != 0) return false;  // raw length the connector cannot express
    for (int offset = k; offset < len; offset += k) {
      for (VertexTypeId t : fwd[offset]) {
        if (t == dst_type) continue;
        if (bwd[len - offset].count(t) > 0) return false;  // non-cut interior
      }
      // The cut point must be reachable as dst_type as well; otherwise no
      // walk actually threads through this offset (vacuous, still fine).
    }
  }
  return true;
}

/// Condition (a): `edge_type` is the only schema edge type between its
/// declared endpoint types.
bool EdgeTypeIsForced(const GraphSchema& schema, const std::string& edge_type) {
  graph::EdgeTypeId id = schema.FindEdgeType(edge_type);
  if (id == graph::kInvalidTypeId) return false;
  const graph::EdgeTypeDecl& decl = schema.edge_type(id);
  for (const graph::EdgeTypeDecl& other : schema.edge_types()) {
    if (&other == &decl) continue;
    if (other.source_type == decl.source_type &&
        other.target_type == decl.target_type) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<PatternChain> ExtractChain(const query::MatchQuery& match) {
  if (match.edges.empty()) return NotApplicable("pattern has no edges");
  // Map out/in degree within the pattern.
  std::map<std::string, int> out_deg;
  std::map<std::string, int> in_deg;
  for (const query::EdgePattern& e : match.edges) {
    ++out_deg[e.from];
    ++in_deg[e.to];
  }
  std::string start;
  for (const query::NodePattern& n : match.nodes) {
    if (out_deg[n.name] > 1 || in_deg[n.name] > 1) {
      return NotApplicable("pattern branches at node '" + n.name + "'");
    }
    if (in_deg[n.name] == 0 && out_deg[n.name] == 1) {
      if (!start.empty()) return NotApplicable("pattern has multiple chains");
      start = n.name;
    }
  }
  if (start.empty()) return NotApplicable("pattern is cyclic");

  // Walk the chain.
  std::map<std::string, const query::EdgePattern*> edge_from;
  for (const query::EdgePattern& e : match.edges) edge_from[e.from] = &e;
  PatternChain chain;
  chain.node_names.push_back(start);
  std::string cur = start;
  size_t used_edges = 0;
  while (true) {
    auto it = edge_from.find(cur);
    if (it == edge_from.end()) break;
    const query::EdgePattern* e = it->second;
    chain.min_total_hops += e->variable_length ? e->min_hops : 1;
    chain.max_total_hops += e->variable_length ? e->max_hops : 1;
    chain.node_names.push_back(e->to);
    cur = e->to;
    ++used_edges;
  }
  if (used_edges != match.edges.size()) {
    return NotApplicable("pattern is not a single connected chain");
  }
  if (chain.node_names.size() != match.nodes.size()) {
    return NotApplicable("pattern has nodes outside the chain");
  }
  return chain;
}

namespace {

/// Maps query comparison operators onto view predicate operators.
PredicateOp ToPredicateOp(query::CompareOp op) {
  switch (op) {
    case query::CompareOp::kEq:
      return PredicateOp::kEq;
    case query::CompareOp::kNe:
      return PredicateOp::kNe;
    case query::CompareOp::kLt:
      return PredicateOp::kLt;
    case query::CompareOp::kLe:
      return PredicateOp::kLe;
    case query::CompareOp::kGt:
      return PredicateOp::kGt;
    case query::CompareOp::kGe:
      return PredicateOp::kGe;
  }
  return PredicateOp::kNone;
}

/// A predicate summarizer covers a query only when the query provably
/// re-applies the predicate everywhere a filtered vertex could bind:
/// every pattern node carries the identical WHERE condition, and there
/// are no variable-length segments (whose interior vertices cannot carry
/// conditions).
bool PredicateCovered(const ViewDefinition& view,
                      const query::MatchQuery& match) {
  if (!view.has_predicate()) return true;
  for (const query::EdgePattern& e : match.edges) {
    if (e.variable_length) return false;
  }
  for (const query::NodePattern& n : match.nodes) {
    bool has_condition = false;
    for (const query::Condition& cond : match.where) {
      if (cond.lhs.base == n.name &&
          cond.lhs.property == view.predicate_property &&
          ToPredicateOp(cond.op) == view.predicate_op &&
          cond.rhs == view.predicate_value) {
        has_condition = true;
      }
    }
    if (!has_condition) return false;
  }
  return true;
}

}  // namespace

bool SummarizerCoversQuery(const ViewDefinition& view, const query::Query& q,
                           const graph::GraphSchema& schema) {
  const query::MatchQuery* match = q.InnermostMatch();
  if (match == nullptr) return false;
  if (!PredicateCovered(view, *match)) return false;
  auto in_list = [&](const std::string& name) {
    return std::find(view.type_list.begin(), view.type_list.end(), name) !=
           view.type_list.end();
  };

  // Edge-filter summarizers: every edge (including every step of a
  // variable-length segment) must provably use kept edge types; untyped
  // or variable-length segments are rejected conservatively.
  if (view.kind == ViewKind::kEdgeInclusionSummarizer ||
      view.kind == ViewKind::kEdgeRemovalSummarizer) {
    bool inclusion = view.kind == ViewKind::kEdgeInclusionSummarizer;
    for (const query::EdgePattern& e : match->edges) {
      if (e.type.empty() || e.variable_length) return false;
      bool listed = in_list(e.type);
      if (inclusion ? !listed : listed) return false;
    }
    return true;
  }
  if (view.kind != ViewKind::kVertexInclusionSummarizer &&
      view.kind != ViewKind::kVertexRemovalSummarizer) {
    return false;
  }

  // Vertex-filter summarizers: compute the kept-type set, then check that
  // (1) every typed pattern node is kept, (2) the domain/range of every
  // typed edge is kept, (3) the possible interior types of every
  // variable-length segment are kept (a raw-graph path could otherwise
  // wander through removed vertices that the view lacks).
  std::vector<bool> kept(schema.num_vertex_types(),
                         view.kind == ViewKind::kVertexRemovalSummarizer);
  for (const std::string& t : view.type_list) {
    VertexTypeId id = schema.FindVertexType(t);
    if (id == graph::kInvalidTypeId) return false;
    kept[id] = view.kind == ViewKind::kVertexInclusionSummarizer;
  }
  auto type_kept = [&](const std::string& name) {
    VertexTypeId id = schema.FindVertexType(name);
    return id != graph::kInvalidTypeId && kept[id];
  };

  bool all_kept = std::all_of(kept.begin(), kept.end(), [](bool b) { return b; });
  for (const query::NodePattern& n : match->nodes) {
    if (n.type.empty()) {
      if (!all_kept) return false;  // untyped node may bind a removed vertex
      continue;
    }
    if (!type_kept(n.type)) return false;
  }
  for (const query::EdgePattern& e : match->edges) {
    if (!e.type.empty() && !e.variable_length) {
      graph::EdgeTypeId id = schema.FindEdgeType(e.type);
      if (id == graph::kInvalidTypeId) return false;
      const graph::EdgeTypeDecl& decl = schema.edge_type(id);
      if (!kept[decl.source_type] || !kept[decl.target_type]) return false;
    }
    if (e.variable_length && e.max_hops > 1) {
      const query::NodePattern* from = match->FindNode(e.from);
      const query::NodePattern* to = match->FindNode(e.to);
      if (from == nullptr || to == nullptr || from->type.empty() ||
          to->type.empty()) {
        if (!all_kept) return false;
        continue;
      }
      VertexTypeId src = schema.FindVertexType(from->type);
      VertexTypeId dst = schema.FindVertexType(to->type);
      // Interior types are (conservatively) those both forward-reachable
      // from the segment source and backward-reachable from its target
      // within the hop budget.
      std::set<VertexTypeId> fwd =
          ReachableTypeUnion(schema, src, e.max_hops - 1, /*forward=*/true);
      std::set<VertexTypeId> bwd =
          ReachableTypeUnion(schema, dst, e.max_hops - 1, /*forward=*/false);
      for (VertexTypeId t : fwd) {
        if (bwd.count(t) > 0 && !kept[t]) return false;
      }
    }
  }
  return true;
}

namespace {

/// Builds the rewritten query: the innermost MATCH chain replaced by a
/// single connector edge pattern (fixed when h_min == h_max == 1).
query::Query ReplaceChainWithConnector(const query::Query& q,
                                       const query::NodePattern& xn,
                                       const query::NodePattern& yn,
                                       const std::string& edge_type,
                                       int h_min, int h_max) {
  query::Query rewritten = q.Clone();
  query::MatchQuery* rm = rewritten.MutableInnermostMatch();
  query::MatchQuery replacement;
  replacement.nodes.push_back(xn);
  if (yn.name != xn.name) replacement.nodes.push_back(yn);
  query::EdgePattern edge;
  edge.from = xn.name;
  edge.to = yn.name;
  edge.type = edge_type;
  if (h_min == 1 && h_max == 1) {
    edge.variable_length = false;
  } else {
    edge.variable_length = true;
    edge.min_hops = h_min;
    edge.max_hops = h_max;
  }
  replacement.edges.push_back(std::move(edge));
  for (const query::Condition& cond : rm->where) {
    replacement.where.push_back(cond);
  }
  replacement.return_items = rm->return_items;
  *rm = std::move(replacement);
  return rewritten;
}

/// Same-vertex-type (variable-length) connector rewrite: the view's one
/// edge merges all path lengths 1..view.k between T-typed vertices, so
/// exactness needs the query's accepted length window [lr..ur] to align
/// with the view's 1..k window wherever the schema admits T-to-T walks:
/// no feasible length below lr, none in (ur..k].
Result<query::Query> RewriteWithSameTypeConnector(
    const query::Query& q, const ViewDefinition& view,
    const graph::GraphSchema& schema, const query::MatchQuery& match,
    const PatternChain& chain) {
  const std::string& x = chain.node_names.front();
  const std::string& y = chain.node_names.back();
  const query::NodePattern* xn = match.FindNode(x);
  const query::NodePattern* yn = match.FindNode(y);
  if (xn == nullptr || yn == nullptr) {
    return Status::Internal("chain endpoints missing from pattern");
  }
  if (xn->type != view.source_type || yn->type != view.source_type) {
    return NotApplicable("chain endpoint types do not match the view");
  }
  for (const query::EdgePattern& e : match.edges) {
    if (!e.type.empty() && !EdgeTypeIsForced(schema, e.type)) {
      return NotApplicable("edge type '" + e.type +
                           "' is not the unique type between its endpoints");
    }
  }
  VertexTypeId type = schema.FindVertexType(view.source_type);
  if (type == graph::kInvalidTypeId) {
    return NotApplicable("view endpoint type unknown to the schema");
  }
  const int lr = chain.min_total_hops;
  const int ur = chain.max_total_hops;
  const int horizon = std::max(ur, view.k);
  std::vector<std::set<VertexTypeId>> fwd =
      ExactReachability(schema, type, horizon, /*forward=*/true);
  auto feasible = [&](int len) { return fwd[len].count(type) > 0; };
  for (int len = 1; len < lr; ++len) {
    if (feasible(len)) {
      return NotApplicable(
          "view merges path lengths below the query's lower bound");
    }
  }
  for (int len = ur + 1; len <= view.k; ++len) {
    if (feasible(len)) {
      return NotApplicable(
          "view merges path lengths above the query's upper bound");
    }
  }
  for (int len = view.k + 1; len <= ur; ++len) {
    if (feasible(len)) {
      return NotApplicable(
          "query accepts path lengths beyond the view's contraction bound");
    }
  }
  // Interiors must be unobserved (same rule as k-hop).
  std::set<std::string> interior(chain.node_names.begin() + 1,
                                 chain.node_names.end() - 1);
  for (const query::ReturnItem& item : match.return_items) {
    if (interior.count(item.variable) > 0) {
      return NotApplicable("chain interior vertex is returned");
    }
  }
  for (const query::Condition& cond : match.where) {
    if (interior.count(cond.lhs.base) > 0) {
      return NotApplicable("chain interior vertex is filtered");
    }
  }
  return ReplaceChainWithConnector(q, *xn, *yn, view.EdgeName(), 1, 1);
}

}  // namespace

Result<query::Query> RewriteQueryWithView(const query::Query& q,
                                          const ViewDefinition& view,
                                          const graph::GraphSchema& schema) {
  if (!IsConnector(view.kind)) {
    if (SummarizerCoversQuery(view, q, schema)) return q.Clone();
    return NotApplicable("summarizer drops types the query uses");
  }
  const query::MatchQuery* pre_match = q.InnermostMatch();
  if (pre_match == nullptr) return NotApplicable("query has no MATCH clause");
  if (view.kind == ViewKind::kSameVertexTypeConnector) {
    KASKADE_ASSIGN_OR_RETURN(PatternChain pre_chain, ExtractChain(*pre_match));
    return RewriteWithSameTypeConnector(q, view, schema, *pre_match,
                                        pre_chain);
  }
  if (view.kind != ViewKind::kKHopConnector) {
    return NotApplicable(
        "same-edge-type and source-to-sink connector rewrites are not "
        "supported (materialize and query them directly)");
  }

  const query::MatchQuery* match = q.InnermostMatch();
  if (match == nullptr) return NotApplicable("query has no MATCH clause");
  KASKADE_ASSIGN_OR_RETURN(PatternChain chain, ExtractChain(*match));

  const std::string& x = chain.node_names.front();
  const std::string& y = chain.node_names.back();
  const query::NodePattern* xn = match->FindNode(x);
  const query::NodePattern* yn = match->FindNode(y);
  if (xn == nullptr || yn == nullptr) {
    return Status::Internal("chain endpoints missing from pattern");
  }
  if (xn->type != view.source_type || yn->type != view.target_type) {
    return NotApplicable("chain endpoint types do not match the view");
  }
  // Intermediates must not be observable.
  std::set<std::string> interior(chain.node_names.begin() + 1,
                                 chain.node_names.end() - 1);
  for (const query::ReturnItem& item : match->return_items) {
    if (interior.count(item.variable) > 0) {
      return NotApplicable("chain interior vertex is returned");
    }
  }
  for (const query::Condition& cond : match->where) {
    if (interior.count(cond.lhs.base) > 0) {
      return NotApplicable("chain interior vertex is filtered");
    }
  }
  // Exactness (a): typed chain edges must be schema-forced.
  for (const query::EdgePattern& e : match->edges) {
    if (!e.type.empty() && !EdgeTypeIsForced(schema, e.type)) {
      return NotApplicable("edge type '" + e.type +
                           "' is not the unique type between its endpoints");
    }
  }

  const int k = view.k;
  const int lr = chain.min_total_hops;
  const int ur = chain.max_total_hops;
  int h_min = (lr + k - 1) / k;  // ceil
  int h_max = ur / k;            // floor
  if (h_max < 1 || h_max < h_min) {
    return NotApplicable("no multiple of k fits the chain's hop range");
  }

  VertexTypeId src_type = schema.FindVertexType(view.source_type);
  VertexTypeId dst_type = schema.FindVertexType(view.target_type);
  if (src_type == graph::kInvalidTypeId || dst_type == graph::kInvalidTypeId) {
    return NotApplicable("view endpoint type unknown to the schema");
  }
  if (src_type != dst_type && h_max > 1) {
    // Connector edges go srcT -> dstT; chaining needs srcT == dstT.
    h_max = 1;
    if (h_min > 1) return NotApplicable("cross-type connector cannot chain");
  }
  // Exactness (b): within the chain's hop range, src->dst walks exist
  // only at multiples of k and cut at connector vertices.
  if (!ConnectorCoversChain(schema, src_type, dst_type, k, lr, ur)) {
    return NotApplicable("schema admits paths the connector cannot cover");
  }

  // Replace the chain with X -[:CONNECTOR*h_min..h_max]-> Y; endpoint
  // WHERE conditions and the RETURN clause carry over.
  return ReplaceChainWithConnector(q, *xn, *yn, view.EdgeName(), h_min,
                                   h_max);
}

}  // namespace kaskade::core
