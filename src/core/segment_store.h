/// \file segment_store.h
/// \brief Per-shard snapshot pipeline over the base graph's immutable
/// CSR segments.
///
/// When `EngineOptions::shards >= 2` the catalog routes base-graph
/// snapshot production through this store instead of the monolithic
/// `SnapshotSlot` path. Vertices are hash-partitioned across K shards
/// on segment boundaries (`graph::ShardOfSegment`, i.e. segment index
/// mod K), and each shard owns:
///
///  - the segment slots for its segments,
///  - a writer mutex serializing refreshes of *that shard only*, and
///  - a dirty-segment set fed by `NoteDelta` with O(|delta|) work.
///
/// Snapshot production is then per-shard incremental: a stale shard
/// rebuilds only its dirty segments (via `CsrGraph::BuildSegment`, the
/// same routine `CsrGraph::Build` uses — so the assembled snapshot is
/// byte-identical to a fresh build by construction) and shares every
/// clean segment with the previous generation by refcount. Concurrent
/// readers refreshing *different* shards proceed in parallel; only
/// same-shard refreshes serialize on that shard's writer lock.
///
/// Locking contract (the Engine's reader/writer discipline):
///  - `NoteDelta` / `NoteChanged` run under the engine writer lock —
///    exclusive with every `Snapshot` call, so they may resize the
///    segment table freely.
///  - `Snapshot` runs under the engine reader lock — concurrent with
///    other `Snapshot` calls but never with mutation, so the graph and
///    the version are frozen for the duration of the call and all
///    concurrent callers pass the *same* version.

#ifndef KASKADE_CORE_SEGMENT_STORE_H_
#define KASKADE_CORE_SEGMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/csr.h"
#include "graph/delta.h"
#include "graph/property_graph.h"

namespace kaskade::core {

class SegmentStore {
 public:
  /// What one `Snapshot` call did, for the catalog's telemetry split.
  enum class Outcome {
    kHit,        ///< version-cached snapshot returned, nothing produced
    kPatch,      ///< produced; at least one segment was shared
    kFullBuild,  ///< produced; every segment was (re)built
  };

  /// Binds to the base graph. `shards` must be >= 1; the partition is
  /// fixed for the store's lifetime.
  SegmentStore(const graph::PropertyGraph* base, size_t shards);

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Records one applied base batch: marks the segments of every
  /// removal endpoint and every appended edge's endpoints dirty in
  /// their owning shards — O(|delta|), independent of |E|. A null
  /// footprint (out-of-band mutation) marks every shard for a full
  /// per-shard rebuild. Engine writer lock required.
  void NoteDelta(const graph::DeltaFootprintPtr& delta);

  /// Announces an out-of-band change the footprint cannot describe:
  /// every shard rebuilds all of its segments on next refresh. Engine
  /// writer lock required.
  void NoteChanged();

  /// Returns the snapshot for the current graph state, stamped
  /// `version` (the catalog generation). Stale shards are refreshed
  /// under their own writer locks — dirty segments rebuilt, clean ones
  /// shared — then the per-shard segment tables are assembled into one
  /// `CsrGraph` and cached by version. Engine reader lock required.
  std::shared_ptr<const graph::CsrGraph> Snapshot(
      uint64_t version, Outcome* outcome = nullptr) const;

  size_t shards() const { return shards_.size(); }

  /// \name Telemetry (monotonic, lifetime totals).
  /// @{
  uint64_t segments_copied() const {
    return segments_copied_.load(std::memory_order_relaxed);
  }
  uint64_t segments_shared() const {
    return segments_shared_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_copied() const {
    return bytes_copied_.load(std::memory_order_relaxed);
  }
  /// Writer-lock acquisitions per shard (index = shard).
  std::vector<uint64_t> writer_acquisitions() const;
  /// @}

 private:
  /// Sentinel: "never refreshed" (catalog generations start at 1 and
  /// count up; they cannot reach this).
  static constexpr uint64_t kNeverRefreshed = ~uint64_t{0};

  struct Shard {
    /// Serializes refreshes of this shard's segments; disjoint shards
    /// refresh concurrently.
    mutable std::mutex mu;
    /// Version the shard's segment slots are current for. Stored with
    /// release after the slot writes, loaded with acquire before
    /// reading them, so assembly sees completed segments.
    std::atomic<uint64_t> version{kNeverRefreshed};
    /// Set by `NoteChanged`: the next refresh rebuilds every owned
    /// segment regardless of the dirty set.
    std::atomic<bool> rebuild_all{false};
    std::atomic<uint64_t> writer_acquisitions{0};
  };

  /// Grows/shrinks the segment table to the graph's current segment
  /// count (new slots start dirty) and syncs the seen counters. Caller
  /// holds the engine writer lock.
  void SyncShape();

  const graph::PropertyGraph* base_;
  /// unique_ptr: Shard holds a mutex and atomics, so the vector's
  /// elements must be pointer-stable and non-movable.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Segment slots, indexed by segment; slot `i` is owned by shard
  /// `ShardOfSegment(i, K)` and only written under that shard's `mu`.
  /// The vector itself is only resized under the engine writer lock
  /// (`SyncShape`), never concurrently with `Snapshot`.
  mutable std::vector<graph::CsrSegmentPtr> segments_;
  /// Dirty flags, indexed by segment; set by `NoteDelta` (writer lock),
  /// cleared by the owning shard's refresh (shard lock). Distinct bytes
  /// are distinct memory locations, so cross-shard clears don't race.
  mutable std::vector<uint8_t> seg_dirty_;

  /// Graph shape at the last `NoteDelta`/`NoteChanged`, for discovering
  /// appended vertices/edges from id-space growth (no log needed).
  size_t vertices_seen_ = 0;
  size_t edges_seen_ = 0;

  /// Assembled-snapshot cache, keyed by version.
  mutable std::mutex cache_mu_;
  mutable std::shared_ptr<const graph::CsrGraph> cache_;
  mutable uint64_t cache_version_ = 0;

  mutable std::atomic<uint64_t> segments_copied_{0};
  mutable std::atomic<uint64_t> segments_shared_{0};
  mutable std::atomic<uint64_t> bytes_copied_{0};
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_SEGMENT_STORE_H_
