/// \file fault.h
/// \brief Named fault-injection sites for overload and partial-failure
/// testing.
///
/// Production code never branches on "is testing": each site
/// unconditionally fires `FaultHooks::Fire`, which is a no-op unless a
/// hook is installed via `EngineOptions::fault_hooks`. The fault suite
/// (`tests/fault_injection_test.cc`) installs hooks that fail or delay
/// specific sites and then proves the degradation contract: no crash,
/// no stale or torn query result, failed view builds quarantine the
/// view and queries transparently fall back to the base graph.
///
/// This header is shared by the engine and the catalog (the catalog
/// owns the snapshot-build and maintainer-apply sites) and depends only
/// on `common/status.h`, so it introduces no include cycle between the
/// two.

#ifndef KASKADE_CORE_FAULT_H_
#define KASKADE_CORE_FAULT_H_

#include <functional>
#include <string>

#include "common/status.h"

namespace kaskade::core {

/// \brief Where a fault can be injected.
enum class FaultSite {
  /// Catalog CSR snapshot production (cache-miss path, patch or full
  /// build). On failure the snapshot request returns null and the query
  /// layer falls back to the legacy (non-CSR) MATCH backend — slower,
  /// still exact.
  kSnapshotBuild,
  /// A view maintainer absorbing one base delta (`ApplyBaseDelta`). On
  /// failure the view is quarantined (it can no longer be kept exact)
  /// and the rest of the batch proceeds; the base graph and the other
  /// views stay consistent.
  kMaintainerApply,
  /// Background build: materializing the view with no engine lock held.
  kMaterialize,
  /// Background build: the publish critical section, immediately before
  /// the catalog swap.
  kPublish,
  /// A batch-pool worker claiming work: on failure the worker abandons
  /// the round and the calling thread drains the remaining tasks itself
  /// — every batch member still completes.
  kBatchWorker,
  /// Appending a record to the write-ahead log (before the bytes reach
  /// the OS). On failure the mutation is rejected after being applied
  /// in memory — the engine reports the durability gap to the caller.
  kWalAppend,
  /// The WAL fsync/flush path. A hook that blocks here holds back the
  /// group-commit flusher, letting crash tests pin the durable
  /// position while acknowledged-but-unflushed writes accumulate.
  kWalFsync,
  /// Writing a checkpoint file. On failure the checkpoint attempt is
  /// abandoned (tmp file removed); the WAL keeps the full history so
  /// nothing is lost, only checkpoint-triggered truncation is deferred.
  kCheckpointWrite,
};

inline const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSnapshotBuild:
      return "snapshot_build";
    case FaultSite::kMaintainerApply:
      return "maintainer_apply";
    case FaultSite::kMaterialize:
      return "materialize";
    case FaultSite::kPublish:
      return "publish";
    case FaultSite::kBatchWorker:
      return "batch_worker";
    case FaultSite::kWalAppend:
      return "wal_append";
    case FaultSite::kWalFsync:
      return "wal_fsync";
    case FaultSite::kCheckpointWrite:
      return "checkpoint_write";
  }
  return "unknown";
}

/// \brief Injector callback: receives the site and a detail string (the
/// view name or job description). Returning non-OK makes the site fail
/// with that status; sleeping inside the hook injects delay. Must be
/// thread-safe — sites fire concurrently from background build workers,
/// batch workers, and query threads.
using FaultHook = std::function<Status(FaultSite, const std::string&)>;

/// \brief Hook container with a cheap no-hook fast path.
struct FaultHooks {
  FaultHook hook;

  bool enabled() const { return static_cast<bool>(hook); }

  /// Fires the hook at `site`; OK when no hook is installed.
  Status Fire(FaultSite site, const std::string& detail) const {
    if (!hook) return Status::OK();
    return hook(site, detail);
  }
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_FAULT_H_
