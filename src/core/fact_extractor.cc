#include "core/fact_extractor.h"

namespace kaskade::core {

using prolog::Term;
using prolog::TermPtr;

Status ExtractMatchFacts(const query::MatchQuery& match,
                         prolog::KnowledgeBase* kb) {
  for (const query::NodePattern& node : match.nodes) {
    KASKADE_RETURN_IF_ERROR(
        kb->AssertFact("queryVertex", {Term::MakeAtom(node.name)}));
    if (!node.type.empty()) {
      KASKADE_RETURN_IF_ERROR(kb->AssertFact(
          "queryVertexType",
          {Term::MakeAtom(node.name), Term::MakeAtom(node.type)}));
    }
  }
  for (const query::EdgePattern& edge : match.edges) {
    if (edge.variable_length) {
      KASKADE_RETURN_IF_ERROR(kb->AssertFact(
          "queryVariableLengthPath",
          {Term::MakeAtom(edge.from), Term::MakeAtom(edge.to),
           Term::MakeInt(edge.min_hops), Term::MakeInt(edge.max_hops)}));
      if (!edge.type.empty()) {
        // Typed variable-length segment, e.g. -[:ROAD*1..5]-> — the
        // trigger for same-edge-type connectors (Table I).
        KASKADE_RETURN_IF_ERROR(kb->AssertFact(
            "queryVariableLengthPathType",
            {Term::MakeAtom(edge.from), Term::MakeAtom(edge.to),
             Term::MakeAtom(edge.type)}));
      }
      continue;
    }
    KASKADE_RETURN_IF_ERROR(kb->AssertFact(
        "queryEdge", {Term::MakeAtom(edge.from), Term::MakeAtom(edge.to)}));
    if (!edge.type.empty()) {
      KASKADE_RETURN_IF_ERROR(kb->AssertFact(
          "queryEdgeType", {Term::MakeAtom(edge.from), Term::MakeAtom(edge.to),
                            Term::MakeAtom(edge.type)}));
    }
  }
  return Status::OK();
}

Status ExtractQueryFacts(const query::Query& q, prolog::KnowledgeBase* kb) {
  const query::MatchQuery* match = q.InnermostMatch();
  if (match == nullptr) {
    return Status::InvalidArgument("query has no MATCH clause");
  }
  return ExtractMatchFacts(*match, kb);
}

Status ExtractSchemaFacts(const graph::GraphSchema& schema,
                          prolog::KnowledgeBase* kb) {
  for (const std::string& name : schema.vertex_type_names()) {
    KASKADE_RETURN_IF_ERROR(
        kb->AssertFact("schemaVertex", {Term::MakeAtom(name)}));
  }
  for (const graph::EdgeTypeDecl& edge : schema.edge_types()) {
    KASKADE_RETURN_IF_ERROR(kb->AssertFact(
        "schemaEdge",
        {Term::MakeAtom(schema.vertex_type_name(edge.source_type)),
         Term::MakeAtom(schema.vertex_type_name(edge.target_type)),
         Term::MakeAtom(edge.name)}));
  }
  return Status::OK();
}

}  // namespace kaskade::core
