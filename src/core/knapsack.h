/// \file knapsack.h
/// \brief 0-1 knapsack solvers for view selection (§V-B).
///
/// The paper formulates view selection as 0-1 knapsack (capacity = space
/// budget, weight = estimated view size, value = performance improvement
/// divided by creation cost) and solves it with OR-tools'
/// branch-and-bound solver. `SolveKnapsackBranchAndBound` is our
/// replacement: depth-first branch-and-bound with the fractional
/// (Dantzig) upper bound. `SolveKnapsackDP` is an exact
/// dynamic-programming cross-check used by tests and small instances.

#ifndef KASKADE_CORE_KNAPSACK_H_
#define KASKADE_CORE_KNAPSACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kaskade::core {

/// \brief One candidate item.
struct KnapsackItem {
  double value = 0;   ///< Benefit (must be >= 0).
  double weight = 0;  ///< Size (must be >= 0).
};

/// \brief Selected subset and its totals.
struct KnapsackResult {
  std::vector<size_t> selected;  ///< Indices into the item vector, sorted.
  double total_value = 0;
  double total_weight = 0;
};

/// Exact branch-and-bound solver. Items with weight > capacity are never
/// selected; zero-weight items with positive value are always selected.
KnapsackResult SolveKnapsackBranchAndBound(
    const std::vector<KnapsackItem>& items, double capacity);

/// Exact DP solver over integer-scaled weights (`resolution` buckets of
/// capacity). Intended for tests and small instances; O(n * resolution).
KnapsackResult SolveKnapsackDP(const std::vector<KnapsackItem>& items,
                               double capacity, size_t resolution = 10'000);

/// Greedy density heuristic (ablation baseline for the selection bench).
KnapsackResult SolveKnapsackGreedy(const std::vector<KnapsackItem>& items,
                                   double capacity);

}  // namespace kaskade::core

#endif  // KASKADE_CORE_KNAPSACK_H_
