#include "core/kaskade.h"

#include "core/rewriter.h"
#include "query/cost.h"
#include "query/parser.h"

namespace kaskade::core {

Result<SelectionReport> Kaskade::AnalyzeWorkload(
    const std::vector<std::string>& query_texts) {
  std::vector<WorkloadEntry> workload;
  workload.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    KASKADE_ASSIGN_OR_RETURN(query::Query q, query::ParseQueryText(text));
    workload.push_back(WorkloadEntry{std::move(q), 1.0});
  }
  ViewSelector selector(&base_, options_.selector);
  KASKADE_ASSIGN_OR_RETURN(SelectionReport report, selector.Select(workload));
  for (const ScoredView& scored : report.selected) {
    KASKADE_RETURN_IF_ERROR(AddMaterializedView(scored.definition));
  }
  return report;
}

Status Kaskade::AddMaterializedView(const ViewDefinition& definition) {
  for (const CatalogEntry& entry : catalog_) {
    if (entry.view.definition.Name() == definition.Name()) {
      return Status::AlreadyExists("view '" + definition.Name() +
                                   "' already materialized");
    }
  }
  Result<MaterializedView> view = Materialize(base_, definition);
  if (!view.ok()) return view.status();
  graph::GraphStats stats = graph::GraphStats::Compute(view->graph);
  catalog_.push_back(CatalogEntry{std::move(*view), std::move(stats)});
  // Attach an incremental maintainer where the view kind supports one;
  // a null slot means RefreshViews re-materializes instead.
  CatalogEntry& entry = catalog_.back();
  bool maintainable = entry.view.definition.kind == ViewKind::kKHopConnector ||
                      entry.view.definition.kind ==
                          ViewKind::kVertexInclusionSummarizer ||
                      entry.view.definition.kind ==
                          ViewKind::kVertexRemovalSummarizer ||
                      entry.view.definition.kind ==
                          ViewKind::kEdgeInclusionSummarizer ||
                      entry.view.definition.kind ==
                          ViewKind::kEdgeRemovalSummarizer;
  maintainers_.push_back(
      maintainable ? std::make_unique<ViewMaintainer>(&base_, &entry.view)
                   : nullptr);
  plan_cache_.clear();  // a new view can change the best plan
  return Status::OK();
}

Status Kaskade::RefreshViews() {
  plan_cache_.clear();  // size statistics (and thus plan choice) may shift
  for (size_t i = 0; i < catalog_.size(); ++i) {
    CatalogEntry& entry = catalog_[i];
    if (maintainers_[i] != nullptr) {
      Result<MaintenanceStats> stats = maintainers_[i]->CatchUp();
      if (!stats.ok()) return stats.status();
      if (stats->edges_added + stats->edges_updated + stats->vertices_added ==
          0) {
        continue;  // nothing changed; stats stay valid
      }
    } else {
      Result<MaterializedView> fresh =
          Materialize(base_, entry.view.definition);
      if (!fresh.ok()) return fresh.status();
      entry.view = std::move(*fresh);
      // The maintainer slot stays null (unsupported kind).
    }
    entry.stats = graph::GraphStats::Compute(entry.view.graph);
  }
  return Status::OK();
}

Status Kaskade::ChoosePlan(const query::Query& query, PlanCacheEntry* entry) {
  // Plan 0: the raw graph.
  graph::GraphStats base_stats = graph::GraphStats::Compute(base_);
  entry->estimated_cost = query::EstimateEvalCost(
      query, base_, base_stats, options_.selector.cost.eval);
  entry->view_name.clear();
  entry->executed_query = query.ToString();

  // Plans 1..n: one per materialized view (single-view rewritings, §V-C).
  for (const CatalogEntry& catalog_entry : catalog_) {
    Result<query::Query> rewritten = RewriteQueryWithView(
        query, catalog_entry.view.definition, base_.schema());
    if (!rewritten.ok()) continue;
    double cost = query::EstimateEvalCost(*rewritten,
                                          catalog_entry.view.graph,
                                          catalog_entry.stats,
                                          options_.selector.cost.eval);
    if (cost < entry->estimated_cost) {
      entry->estimated_cost = cost;
      entry->view_name = catalog_entry.view.definition.Name();
      entry->executed_query = rewritten->ToString();
    }
  }
  return Status::OK();
}

Result<Kaskade::ExecutionResult> Kaskade::RunPlan(const PlanCacheEntry& entry) {
  const graph::PropertyGraph* target = &base_;
  if (!entry.view_name.empty()) {
    for (const CatalogEntry& catalog_entry : catalog_) {
      if (catalog_entry.view.definition.Name() == entry.view_name) {
        target = &catalog_entry.view.graph;
      }
    }
    if (target == &base_) {
      return Status::Internal("cached plan references a missing view '" +
                              entry.view_name + "'");
    }
  }
  query::QueryExecutor executor(target, options_.executor);
  KASKADE_ASSIGN_OR_RETURN(query::Table table,
                           executor.ExecuteText(entry.executed_query));
  ExecutionResult result;
  result.table = std::move(table);
  result.used_view = !entry.view_name.empty();
  result.view_name = entry.view_name;
  result.executed_query = entry.executed_query;
  result.estimated_cost = entry.estimated_cost;
  return result;
}

Result<Kaskade::ExecutionResult> Kaskade::Execute(
    const std::string& query_text) {
  auto it = plan_cache_.find(query_text);
  if (it != plan_cache_.end()) {
    ++plan_cache_hits_;
    return RunPlan(it->second);
  }
  ++plan_cache_misses_;
  KASKADE_ASSIGN_OR_RETURN(query::Query q, query::ParseQueryText(query_text));
  PlanCacheEntry entry;
  KASKADE_RETURN_IF_ERROR(ChoosePlan(q, &entry));
  plan_cache_.emplace(query_text, entry);
  return RunPlan(entry);
}

Result<Kaskade::ExecutionResult> Kaskade::Execute(const query::Query& query) {
  PlanCacheEntry entry;
  KASKADE_RETURN_IF_ERROR(ChoosePlan(query, &entry));
  return RunPlan(entry);
}

}  // namespace kaskade::core
