#include "core/view_definition.h"

#include "common/string_util.h"
#include "graph/serialization.h"
#include "query/ast.h"

namespace kaskade::core {

const char* ViewKindName(ViewKind kind) {
  switch (kind) {
    case ViewKind::kKHopConnector:
      return "k-hop connector";
    case ViewKind::kSameVertexTypeConnector:
      return "same-vertex-type connector";
    case ViewKind::kSameEdgeTypeConnector:
      return "same-edge-type connector";
    case ViewKind::kSourceToSinkConnector:
      return "source-to-sink connector";
    case ViewKind::kVertexInclusionSummarizer:
      return "vertex-inclusion summarizer";
    case ViewKind::kVertexRemovalSummarizer:
      return "vertex-removal summarizer";
    case ViewKind::kEdgeInclusionSummarizer:
      return "edge-inclusion summarizer";
    case ViewKind::kEdgeRemovalSummarizer:
      return "edge-removal summarizer";
    case ViewKind::kVertexAggregatorSummarizer:
      return "vertex-aggregator summarizer";
    case ViewKind::kSubgraphAggregatorSummarizer:
      return "subgraph-aggregator summarizer";
  }
  return "unknown";
}

bool IsConnector(ViewKind kind) {
  switch (kind) {
    case ViewKind::kKHopConnector:
    case ViewKind::kSameVertexTypeConnector:
    case ViewKind::kSameEdgeTypeConnector:
    case ViewKind::kSourceToSinkConnector:
      return true;
    default:
      return false;
  }
}

const char* PredicateOpName(PredicateOp op) {
  switch (op) {
    case PredicateOp::kNone:
      return "";
    case PredicateOp::kEq:
      return "=";
    case PredicateOp::kNe:
      return "<>";
    case PredicateOp::kLt:
      return "<";
    case PredicateOp::kLe:
      return "<=";
    case PredicateOp::kGt:
      return ">";
    case PredicateOp::kGe:
      return ">=";
  }
  return "";
}

// `PredicateOp` is `CompareOp` with a leading kNone slot; keep the
// layouts in lockstep so predicate evaluation can reuse the one shared
// comparison kernel.
static_assert(static_cast<int>(PredicateOp::kEq) - 1 ==
                  static_cast<int>(query::CompareOp::kEq) &&
              static_cast<int>(PredicateOp::kNe) - 1 ==
                  static_cast<int>(query::CompareOp::kNe) &&
              static_cast<int>(PredicateOp::kLt) - 1 ==
                  static_cast<int>(query::CompareOp::kLt) &&
              static_cast<int>(PredicateOp::kLe) - 1 ==
                  static_cast<int>(query::CompareOp::kLe) &&
              static_cast<int>(PredicateOp::kGt) - 1 ==
                  static_cast<int>(query::CompareOp::kGt) &&
              static_cast<int>(PredicateOp::kGe) - 1 ==
                  static_cast<int>(query::CompareOp::kGe));

bool EvalPredicate(const graph::PropertyValue& lhs, PredicateOp op,
                   const graph::PropertyValue& rhs) {
  if (op == PredicateOp::kNone) return true;
  return query::EvaluateCompare(
      static_cast<query::CompareOp>(static_cast<int>(op) - 1), lhs, rhs);
}

namespace {

std::string PredicateSuffix(const ViewDefinition& view) {
  if (!view.has_predicate()) return "";
  return "{" + view.predicate_property + PredicateOpName(view.predicate_op) +
         view.predicate_value.ToString() + "}";
}

}  // namespace

std::string ViewDefinition::Name() const {
  switch (kind) {
    case ViewKind::kKHopConnector:
      return "khop" + std::to_string(k) + "[" + source_type + "->" +
             target_type + "]";
    case ViewKind::kSameVertexTypeConnector:
      return "conn*" + std::to_string(k) + "[" + source_type + "]";
    case ViewKind::kSameEdgeTypeConnector:
      return "econn*" + std::to_string(k) + "[" + path_edge_type + "]";
    case ViewKind::kSourceToSinkConnector:
      return "src2sink*" + std::to_string(k) + "[" + source_type + "->" +
             target_type + "]";
    case ViewKind::kVertexInclusionSummarizer:
      return "vinc[" + JoinStrings(type_list, ",") + "]" +
             PredicateSuffix(*this);
    case ViewKind::kVertexRemovalSummarizer:
      return "vrem[" + JoinStrings(type_list, ",") + "]" +
             PredicateSuffix(*this);
    case ViewKind::kEdgeInclusionSummarizer:
      return "einc[" + JoinStrings(type_list, ",") + "]" +
             PredicateSuffix(*this);
    case ViewKind::kEdgeRemovalSummarizer:
      return "erem[" + JoinStrings(type_list, ",") + "]" +
             PredicateSuffix(*this);
    case ViewKind::kVertexAggregatorSummarizer:
      return "vagg[" + source_type + " by " + group_by_property + "]";
    case ViewKind::kSubgraphAggregatorSummarizer:
      return "sagg[by " + group_by_property + "]";
  }
  return "view";
}

std::string ViewDefinition::EdgeName() const {
  if (!connector_edge_name.empty()) return connector_edge_name;
  std::string src = ToUpperAscii(source_type.empty() ? "ANY" : source_type);
  std::string dst = ToUpperAscii(target_type.empty() ? "ANY" : target_type);
  switch (kind) {
    case ViewKind::kKHopConnector:
      return std::to_string(k) + "_HOP_" + src + "_TO_" + dst;
    case ViewKind::kSameVertexTypeConnector:
      return "CONN_" + src + "_TO_" + src;
    case ViewKind::kSameEdgeTypeConnector:
      return "CONN_VIA_" + ToUpperAscii(path_edge_type);
    case ViewKind::kSourceToSinkConnector:
      return "SRC_TO_SINK";
    default:
      return "VIEW_EDGE";
  }
}

std::string ViewDefinition::ToCypher() const {
  auto node = [](const char* var, const std::string& type) {
    std::string s = "(";
    s += var;
    if (!type.empty()) s += ":" + type;
    return s + ")";
  };
  switch (kind) {
    case ViewKind::kKHopConnector:
      return "MATCH " + node("x", source_type) + "-[*" + std::to_string(k) +
             ".." + std::to_string(k) + "]->" + node("y", target_type) +
             " MERGE (x)-[:" + EdgeName() + "]->(y)";
    case ViewKind::kSameVertexTypeConnector:
      return "MATCH " + node("x", source_type) + "-[*1.." + std::to_string(k) +
             "]->" + node("y", source_type) + " MERGE (x)-[:" + EdgeName() +
             "]->(y)";
    case ViewKind::kSameEdgeTypeConnector:
      return "MATCH " + node("x", "") + "-[:" + path_edge_type + "*1.." +
             std::to_string(k) + "]->" + node("y", "") + " MERGE (x)-[:" +
             EdgeName() + "]->(y)";
    case ViewKind::kSourceToSinkConnector:
      return "MATCH " + node("x", source_type) + "-[*1.." + std::to_string(k) +
             "]->" + node("y", target_type) +
             " WHERE x.indegree = 0 AND y.outdegree = 0 MERGE (x)-[:" +
             EdgeName() + "]->(y)";
    case ViewKind::kVertexInclusionSummarizer:
      return "MATCH (v) WHERE v.type IN [" + JoinStrings(type_list, ",") +
             "] RETURN v";
    case ViewKind::kVertexRemovalSummarizer:
      return "MATCH (v) WHERE NOT v.type IN [" + JoinStrings(type_list, ",") +
             "] RETURN v";
    case ViewKind::kEdgeInclusionSummarizer:
      return "MATCH (a)-[e]->(b) WHERE e.type IN [" +
             JoinStrings(type_list, ",") + "] RETURN a, e, b";
    case ViewKind::kEdgeRemovalSummarizer:
      return "MATCH (a)-[e]->(b) WHERE NOT e.type IN [" +
             JoinStrings(type_list, ",") + "] RETURN a, e, b";
    case ViewKind::kVertexAggregatorSummarizer:
      return "MATCH (v:" + source_type + ") WITH v." + group_by_property +
             " AS grp, collect(v) AS members MERGE (s:Super {key: grp})";
    case ViewKind::kSubgraphAggregatorSummarizer:
      return "MATCH (v) WITH v." + group_by_property +
             " AS grp, collect(v) AS members MERGE (s:Super {key: grp})";
  }
  return "";
}

namespace {

/// Stable persisted tokens for each kind — these are on-disk format, so
/// unlike `ViewKindName` they must never change once shipped.
constexpr std::pair<ViewKind, const char*> kKindTokens[] = {
    {ViewKind::kKHopConnector, "khop"},
    {ViewKind::kSameVertexTypeConnector, "conn"},
    {ViewKind::kSameEdgeTypeConnector, "econn"},
    {ViewKind::kSourceToSinkConnector, "src2sink"},
    {ViewKind::kVertexInclusionSummarizer, "vinc"},
    {ViewKind::kVertexRemovalSummarizer, "vrem"},
    {ViewKind::kEdgeInclusionSummarizer, "einc"},
    {ViewKind::kEdgeRemovalSummarizer, "erem"},
    {ViewKind::kVertexAggregatorSummarizer, "vagg"},
    {ViewKind::kSubgraphAggregatorSummarizer, "sagg"},
};

}  // namespace

std::string ViewDefinition::ToRecord() const {
  using graph::EncodePropertyValue;
  using graph::EscapeToken;
  std::string out = "kind=";
  for (const auto& [k_enum, token] : kKindTokens) {
    if (k_enum == kind) out += token;
  }
  out += " k=" + std::to_string(k);
  auto field = [&](const char* key, const std::string& value) {
    if (value.empty()) return;
    out += std::string(" ") + key + "=" + EscapeToken(value);
  };
  field("source", source_type);
  field("target", target_type);
  field("path_edge", path_edge_type);
  for (const std::string& type : type_list) field("type", type);
  field("group_by", group_by_property);
  if (predicate_op != PredicateOp::kNone) {
    field("pred_prop", predicate_property);
    out += " pred_op=" + std::to_string(static_cast<int>(predicate_op));
    out += " pred_val=" + EncodePropertyValue(predicate_value);
  }
  field("edge_name", connector_edge_name);
  return out;
}

Result<ViewDefinition> ViewDefinition::FromRecord(const std::string& record) {
  ViewDefinition view;
  bool saw_kind = false;
  for (const std::string& token : graph::TokenizeLine(record)) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("view record token missing '=': " +
                                     token);
    }
    std::string key = token.substr(0, eq);
    std::string raw = token.substr(eq + 1);
    if (key == "kind") {
      for (const auto& [k_enum, kind_token] : kKindTokens) {
        if (raw == kind_token) {
          view.kind = k_enum;
          saw_kind = true;
        }
      }
      if (!saw_kind) {
        return Status::InvalidArgument("unknown view kind '" + raw + "'");
      }
      continue;
    }
    if (key == "k" || key == "pred_op") {
      int value;
      try {
        value = std::stoi(raw);
      } catch (...) {
        return Status::InvalidArgument("bad integer in view record: " + token);
      }
      if (key == "k") {
        view.k = value;
      } else if (value < static_cast<int>(PredicateOp::kNone) ||
                 value > static_cast<int>(PredicateOp::kGe)) {
        return Status::InvalidArgument("bad predicate op " + raw);
      } else {
        view.predicate_op = static_cast<PredicateOp>(value);
      }
      continue;
    }
    if (key == "pred_val") {
      KASKADE_ASSIGN_OR_RETURN(view.predicate_value,
                               graph::DecodePropertyValue(raw));
      continue;
    }
    KASKADE_ASSIGN_OR_RETURN(std::string value, graph::UnescapeToken(raw));
    if (key == "source") {
      view.source_type = std::move(value);
    } else if (key == "target") {
      view.target_type = std::move(value);
    } else if (key == "path_edge") {
      view.path_edge_type = std::move(value);
    } else if (key == "type") {
      view.type_list.push_back(std::move(value));
    } else if (key == "group_by") {
      view.group_by_property = std::move(value);
    } else if (key == "pred_prop") {
      view.predicate_property = std::move(value);
    } else if (key == "edge_name") {
      view.connector_edge_name = std::move(value);
    } else {
      return Status::InvalidArgument("unknown view record key '" + key + "'");
    }
  }
  if (!saw_kind) {
    return Status::InvalidArgument("view record missing kind: " + record);
  }
  return view;
}

}  // namespace kaskade::core
