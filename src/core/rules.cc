#include "core/rules.h"

#include <string>

namespace kaskade::core {

const char* SchemaConstraintRules() {
  return R"PL(
% ---------------------------------------------------------------------------
% Schema constraint mining (paper Lst. 2).
% Determine whether acyclic directed k-length paths between two node
% types X and Y are feasible over the input graph schema. schemaEdge are
% explicit constraints extracted from the schema.
% ---------------------------------------------------------------------------
schemaKHopPath(X, Y, K) :-
    schemaKHopPath(X, Y, K, []).
schemaKHopPath(X, Y, 1, _) :-
    schemaEdge(X, Y, _).
schemaKHopPath(X, Y, K, Trail) :-
    schemaEdge(X, Z, _), not(member(Z, Trail)),
    schemaKHopPath(Z, Y, K1, [X|Trail]), K is K1 + 1.

% Walk variant: k-length schema walks may revisit vertex types (needed to
% validate K>=3 connectors over cyclic schemas such as Job<->File).
% Requires K bound; view templates bind K from the query constraints
% before consulting the schema, which is exactly how constraint injection
% prunes this search.
schemaKHopWalk(X, Y, 1) :-
    schemaEdge(X, Y, _).
schemaKHopWalk(X, Y, K) :-
    integer(K), K > 1,
    schemaEdge(X, Z, _),
    K1 is K - 1,
    schemaKHopWalk(Z, Y, K1).

% Reachability over the schema graph (trail-bounded, so it terminates on
% cyclic schemas).
schemaPath(X, Y) :- schemaPathTrail(X, Y, [X]).
schemaPathTrail(X, Y, _) :- schemaEdge(X, Y, _).
schemaPathTrail(X, Y, Trail) :-
    schemaEdge(X, Z, _), not(member(Z, Trail)),
    schemaPathTrail(Z, Y, [Z|Trail]).

% All edge types named by the schema.
schemaEdgeType(T) :- schemaEdge(_, _, T).
)PL";
}

const char* QueryConstraintRules() {
  return R"PL(
% ---------------------------------------------------------------------------
% Query constraint mining (paper Lst. 6).
% ---------------------------------------------------------------------------
% Query k-hop variable length paths
queryKHopVariableLengthPath(X, Y, K) :-
    queryVariableLengthPath(X, Y, LOWER, UPPER),
    between(LOWER, UPPER, K).

% Query k-hop paths
queryKHopPath(X, Y, 1) :- queryEdge(X, Y).
queryKHopPath(X, Y, K) :-
    queryKHopVariableLengthPath(X, Y, K).
queryKHopPath(X, Y, K) :- queryEdge(X, Z),
    queryKHopPath(Z, Y, K1), K is K1 + 1.
queryKHopPath(X, Y, K) :-
    queryKHopVariableLengthPath(X, Z, K2),
    queryKHopPath(Z, Y, K1), K is K1 + K2.

% Query paths
queryPath(X, Y) :- queryEdge(X, Y).
queryPath(X, Y) :- queryKHopPath(X, Y, _).
queryPath(X, Y) :- queryEdge(X, Z), queryPath(Z, Y).

% Query vertex source/sink
queryVertexSource(X) :- queryVertexInDegree(X, 0).
queryVertexSink(X) :- queryVertexOutDegree(X, 0).

% Query vertex in/out degrees. Lst. 6 counts only queryEdge facts, but a
% vertex that anchors a variable-length path segment is clearly not a
% source/sink; incident var-length paths count toward the degree here.
queryIncomingVertices(X, INLIST) :- queryVertex(X),
    findall(SRC, queryIncidentIn(SRC, X), INLIST).
queryOutgoingVertices(X, OUTLIST) :- queryVertex(X),
    findall(DST, queryIncidentOut(X, DST), OUTLIST).
queryIncidentIn(S, X) :- queryEdge(S, X).
queryIncidentIn(S, X) :- queryVariableLengthPath(S, X, _, _).
queryIncidentOut(X, D) :- queryEdge(X, D).
queryIncidentOut(X, D) :- queryVariableLengthPath(X, D, _, _).
queryVertexInDegree(X, D) :-
    queryIncomingVertices(X, INLIST), length(INLIST, D).
queryVertexOutDegree(X, D) :-
    queryOutgoingVertices(X, OUTLIST), length(OUTLIST, D).

% Vertex/edge types referenced anywhere in the query.
queryUsesVertexType(T) :- queryVertexType(_, T).
queryUsesEdgeType(T) :- queryEdgeType(_, _, T).
)PL";
}

const char* ConnectorViewTemplates() {
  return R"PL(
% ---------------------------------------------------------------------------
% Connector view templates (paper Lst. 3).
% ---------------------------------------------------------------------------
% k-hop connector between nodes X and Y.
kHopConnector(X, Y, XTYPE, YTYPE, K) :-
    % query constraints
    queryVertexType(X, XTYPE),
    queryVertexType(Y, YTYPE),
    queryKHopPath(X, Y, K),
    % schema constraints (K is bound here, so the walk terminates)
    schemaKHopWalk(XTYPE, YTYPE, K).

% k-hop connector where all vertices are of the same type.
kHopConnectorSameVertexType(X, Y, VTYPE, K) :-
    kHopConnector(X, Y, VTYPE, VTYPE, K).

% Variable-length connector where all vertices are of the same type.
connectorSameVertexType(X, Y, VTYPE) :-
    % query constraints
    queryVertexType(X, VTYPE),
    queryVertexType(Y, VTYPE),
    queryPath(X, Y),
    % schema constraints
    schemaPath(VTYPE, VTYPE).

% Source-to-sink variable-length connector.
sourceToSinkConnector(X, Y) :-
    % query constraints
    queryVertexSource(X),
    queryVertexSink(Y),
    queryPath(X, Y),
    % schema constraints (over the endpoint types)
    queryVertexType(X, XTYPE),
    queryVertexType(Y, YTYPE),
    schemaPath(XTYPE, YTYPE).

% Same-edge-type connector (Table I): the query traverses a
% variable-length path restricted to a single edge type, and the schema
% allows that type to chain (its range can reach its domain... for a
% single type, chaining requires range == domain or repeated hops of the
% same type; the schema check below requires the type to exist).
sameEdgeTypeConnector(X, Y, ETYPE) :-
    % query constraints
    queryVariableLengthPathType(X, Y, ETYPE),
    % schema constraints
    schemaEdgeType(ETYPE).
)PL";
}

const char* SummarizerViewTemplates() {
  return R"PL(
% ---------------------------------------------------------------------------
% Summarizer view templates (paper Lst. 5, plus the schema-driven
% inclusion/removal templates used by the evaluation's "filter" views).
% ---------------------------------------------------------------------------
% summarizers: filter vertices and edges by type (paper Lst. 5 verbatim)
summarizerRemoveEdges(X, Y, ETYPE_REMOVE, ETYPE_KEPT) :-
    queryEdge(X, Y), not(queryEdgeType(X, Y, ETYPE_REMOVE)),
    queryEdgeType(X, Y, ETYPE_KEPT).
summarizerRemoveVertices(X, VTYPE_REMOVE, VTYPE_KEPT) :-
    queryVertex(X), not(queryVertexType(X, VTYPE_REMOVE)),
    queryVertexType(X, VTYPE_KEPT).

% Schema-driven summarizers: keep exactly the vertex/edge types the query
% references; remove every schema type the query never touches. These
% instantiate the "schema-level summarizer" of the paper's evaluation
% (SS VII-E), which prunes task/machine vertices from the provenance graph.
vertexInclusionSummarizer(TYPES) :-
    setof(T, queryUsesVertexType(T), TYPES).
vertexRemovalSummarizer(VTYPE) :-
    schemaVertex(VTYPE), not(queryUsesVertexType(VTYPE)).
edgeInclusionSummarizer(TYPES) :-
    setof(T, queryUsesEdgeType(T), TYPES).
edgeRemovalSummarizer(ETYPE) :-
    schemaEdgeType(ETYPE), not(queryUsesEdgeType(ETYPE)).

% Example aggr function for higher-order functions such as aggregator
% graph view templates (paper Lst. 5).
sum(X, Y, R) :- R is X + Y.

% Ego-centric k-hop neighborhood (undirected).
queryVertexKHopNbors(K, X, LIST) :- queryVertex(X),
    findall(SRC, queryKHopPath(SRC, X, K), INLIST),
    findall(DST, queryKHopPath(X, DST, K), OUTLIST),
    append(INLIST, OUTLIST, TMPLIST), sort(TMPLIST, LIST).

% Example aggregator using k-hop neighborhood, e.g., aggregate all 1-hop
% neighbors as sum of their bytes:
%   kHopNborsAggregator(1, j2, 'bytes', sum, R).
kHopNborsAggregator(K, X, P, AGGR, RESULT) :-
    queryVertexKHopNbors(K, X, NBORS),
    convlist(property(P), NBORS, OUTLIST),
    foldl(AGGR, OUTLIST, 0, RESULT).
)PL";
}

const char* AllRules() {
  static const std::string all = std::string(SchemaConstraintRules()) +
                                 QueryConstraintRules() +
                                 ConnectorViewTemplates() +
                                 SummarizerViewTemplates();
  return all.c_str();
}

}  // namespace kaskade::core
