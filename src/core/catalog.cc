#include "core/catalog.h"

#include <mutex>
#include <utility>

namespace kaskade::core {

Result<ViewHandle> ViewCatalog::Add(const ViewDefinition& definition) {
  std::unique_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name() == definition.Name()) {
      return Status::AlreadyExists("view '" + definition.Name() +
                                   "' already materialized");
    }
  }
  Result<MaterializedView> view = Materialize(*base_, definition);
  if (!view.ok()) return view.status();

  graph::GraphStats stats = graph::GraphStats::Compute(view->graph);
  auto entry = std::unique_ptr<CatalogEntry>(new CatalogEntry{
      next_handle_++, std::move(*view), std::move(stats), nullptr});
  // A null maintainer slot means RefreshAll re-materializes instead.
  if (ViewMaintainer::SupportsKind(entry->view.definition.kind)) {
    entry->maintainer = std::make_unique<ViewMaintainer>(base_, &entry->view);
  }
  ViewHandle handle = entry->handle;
  entries_.push_back(std::move(entry));
  BumpGeneration();
  return handle;
}

Status ViewCatalog::Remove(const std::string& name) {
  std::unique_lock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->name() == name) {
      entries_.erase(it);
      BumpGeneration();
      return Status::OK();
    }
  }
  return Status::NotFound("view '" + name + "' is not in the catalog");
}

Status ViewCatalog::RefreshAll() {
  std::unique_lock lock(mu_);
  // Unconditional: even a no-op refresh may follow base-graph changes
  // that shifted raw-plan costs.
  BumpGeneration();
  for (const auto& entry : entries_) {
    if (entry->maintainer != nullptr) {
      Result<MaintenanceStats> stats = entry->maintainer->CatchUp();
      if (!stats.ok()) return stats.status();
      if (stats->edges_added + stats->edges_updated + stats->vertices_added ==
          0) {
        continue;  // nothing changed; stats stay valid
      }
    } else {
      // Only unmaintainable kinds reach here (Add never leaves a
      // supported kind without a maintainer), so replacing the view
      // wholesale cannot strand maintainer state.
      Result<MaterializedView> fresh =
          Materialize(*base_, entry->view.definition);
      if (!fresh.ok()) return fresh.status();
      entry->view = std::move(*fresh);
    }
    entry->stats = graph::GraphStats::Compute(entry->view.graph);
  }
  return Status::OK();
}

size_t ViewCatalog::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

const CatalogEntry* ViewCatalog::Find(const std::string& name) const {
  std::shared_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name() == name) return entry.get();
  }
  return nullptr;
}

const CatalogEntry* ViewCatalog::Get(ViewHandle handle) const {
  std::shared_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->handle == handle) return entry.get();
  }
  return nullptr;
}

std::vector<const CatalogEntry*> ViewCatalog::Entries() const {
  std::shared_lock lock(mu_);
  std::vector<const CatalogEntry*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  return out;
}

}  // namespace kaskade::core
