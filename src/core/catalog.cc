#include "core/catalog.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "core/cost_model.h"

namespace kaskade::core {

namespace {

/// Recomputes `entry`'s statistics and records the live counts they
/// were computed at.
void RefreshStats(CatalogEntry* entry) {
  entry->stats = graph::GraphStats::Compute(entry->view.graph);
  entry->stats_live_vertices = entry->view.graph.NumLiveVertices();
  entry->stats_live_edges = entry->view.graph.NumLiveEdges();
}

/// True when the view drifted far enough (>10%, with a small-view
/// floor) from the state its statistics were computed at that plan
/// costing would be misled.
bool StatsAreStale(const CatalogEntry& entry) {
  auto drifted = [](size_t now, size_t then) {
    size_t diff = now > then ? now - then : then - now;
    return diff * 10 > then + 32;
  };
  return drifted(entry.view.graph.NumLiveVertices(),
                 entry.stats_live_vertices) ||
         drifted(entry.view.graph.NumLiveEdges(), entry.stats_live_edges);
}

/// Re-materializes `entry` over `base` and re-attaches a maintainer
/// when the kind supports one (a rebuilt view invalidates any previous
/// maintainer's indexes).
Status Rebuild(const graph::PropertyGraph& base, CatalogEntry* entry) {
  Result<MaterializedView> fresh = Materialize(base, entry->view.definition);
  if (!fresh.ok()) return fresh.status();
  entry->view = std::move(*fresh);
  entry->maintainer =
      ViewMaintainer::SupportsKind(entry->view.definition.kind)
          ? std::make_unique<ViewMaintainer>(&base, &entry->view)
          : nullptr;
  return Status::OK();
}

/// Trail bounds: past either cap a snapshot patch would walk a delta
/// history approaching the size of the graph, so the slot falls back to
/// one full rebuild (which resets the trail) instead of growing without
/// bound under a stream of mutations that nobody queries between.
constexpr size_t kMaxTrailBatches = 64;
constexpr size_t kMaxTrailRemovals = 8192;

}  // namespace

void ViewCatalog::BumpGeneration() {
  const uint64_t gen = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  for (auto& [handle, slot] : snapshots_) {
    if (slot.patchable) slot.head_generation = gen;
  }
}

bool ViewCatalog::WantsBaseDeltaTrail() const {
  // The sharded store always consumes footprints: removal ids are how
  // it finds the segments a batch dirtied.
  if (store_ != nullptr) return true;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  auto it = snapshots_.find(kInvalidViewHandle);
  return it != snapshots_.end() && it->second.patchable &&
         it->second.csr != nullptr;
}

void ViewCatalog::NoteBaseDelta(const graph::DeltaFootprintPtr& delta) {
  if (delta == nullptr) {
    // The caller chose not to materialize a footprint; if a patchable
    // base snapshot exists after all, it must not survive with a trail
    // that misses this batch.
    InvalidateSnapshot(kInvalidViewHandle);
    return;
  }
  if (store_ != nullptr) {
    // Sharded base pipeline: O(|delta|) per-shard dirty marking instead
    // of the single-slot trail.
    store_->NoteDelta(delta);
    return;
  }
  if (delta->edge_removals.empty()) {
    // Insert-only batches need no log: the patch path discovers
    // appended vertices/edges from id-space growth.
    return;
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  auto it = snapshots_.find(kInvalidViewHandle);
  if (it == snapshots_.end()) return;  // nothing cached; nothing to patch
  SnapshotSlot& slot = it->second;
  if (!slot.patchable) return;
  // Heuristic early cut: a batch whose touched-vertex bound alone
  // dwarfs the dirty budget will almost certainly hit PatchedFrom's
  // dirty-fraction fallback — don't grow the trail for it. The bound
  // overcounts repeated endpoints, so the 2x slack keeps skewed (hubby)
  // batches on the patch path; a false cut only costs one correct full
  // rebuild.
  // (A patchable slot implies patching is enabled — SnapshotOf only
  // publishes patchable slots when it is.)
  const double dirty_budget =
      effective_max_dirty_fraction() *
      static_cast<double>(base_->NumVertices());
  if (slot.trail_batches >= kMaxTrailBatches ||
      slot.trail_removals + delta->edge_removals.size() > kMaxTrailRemovals ||
      static_cast<double>(delta->TouchedVertexBound()) > 2.0 * dirty_budget) {
    slot.patchable = false;
    slot.csr.reset();
    slot.base_trail.clear();
    slot.trail_batches = slot.trail_removals = 0;
    return;
  }
  slot.base_trail.push_back(delta);
  ++slot.trail_batches;
  slot.trail_removals += delta->edge_removals.size();
}

void ViewCatalog::NoteViewDelta(ViewHandle handle,
                                std::vector<graph::EdgeId> removed) {
  if (removed.empty()) return;  // insert-only: id-space growth covers it
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  auto it = snapshots_.find(handle);
  if (it == snapshots_.end()) return;
  SnapshotSlot& slot = it->second;
  if (!slot.patchable) return;
  if (slot.trail_batches >= kMaxTrailBatches ||
      slot.trail_removals + removed.size() > kMaxTrailRemovals) {
    slot.patchable = false;
    slot.csr.reset();
    slot.view_removals.clear();
    slot.trail_batches = slot.trail_removals = 0;
    return;
  }
  slot.view_removals.insert(slot.view_removals.end(), removed.begin(),
                            removed.end());
  ++slot.trail_batches;
  slot.trail_removals += removed.size();
}

void ViewCatalog::InvalidateSnapshot(ViewHandle handle) {
  if (handle == kInvalidViewHandle && store_ != nullptr) {
    // Out-of-band base change: every shard rebuilds its segments on
    // the next refresh.
    store_->NoteChanged();
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  auto it = snapshots_.find(handle);
  if (it == snapshots_.end()) return;
  SnapshotSlot& slot = it->second;
  slot.patchable = false;
  slot.csr.reset();
  slot.base_trail.clear();
  slot.view_removals.clear();
  slot.trail_batches = slot.trail_removals = 0;
}

const char* ViewStateName(ViewState state) {
  switch (state) {
    case ViewState::kBuilding:
      return "building";
    case ViewState::kReady:
      return "ready";
    case ViewState::kDropping:
      return "dropping";
    case ViewState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

Result<ViewHandle> ViewCatalog::Add(const ViewDefinition& definition) {
  std::unique_lock lock(mu_);
  CatalogEntry* reclaim = nullptr;
  for (const auto& entry : entries_) {
    if (entry->name() == definition.Name()) {
      // A quarantined entry holds a name whose view failed: re-adding it
      // is the repair path, rebuilding in place under the same handle.
      if (entry->state == ViewState::kQuarantined) {
        reclaim = entry.get();
        break;
      }
      return Status::AlreadyExists("view '" + definition.Name() +
                                   "' already materialized");
    }
  }
  Result<MaterializedView> view = Materialize(*base_, definition);
  if (!view.ok()) return view.status();
  if (reclaim != nullptr) {
    reclaim->view = std::move(*view);
    reclaim->maintainer =
        ViewMaintainer::SupportsKind(reclaim->view.definition.kind)
            ? std::make_unique<ViewMaintainer>(base_, &reclaim->view)
            : nullptr;
    RefreshStats(reclaim);
    reclaim->state = ViewState::kReady;
    reclaim->health = Status::OK();
    InvalidateSnapshot(reclaim->handle);
    BumpGeneration();
    return reclaim->handle;
  }

  auto entry = std::unique_ptr<CatalogEntry>(new CatalogEntry{
      next_handle_++, std::move(*view), graph::GraphStats{}, nullptr});
  RefreshStats(entry.get());
  // A null maintainer slot means RefreshAll re-materializes instead.
  if (ViewMaintainer::SupportsKind(entry->view.definition.kind)) {
    entry->maintainer = std::make_unique<ViewMaintainer>(base_, &entry->view);
  }
  ViewHandle handle = entry->handle;
  entries_.push_back(std::move(entry));
  BumpGeneration();
  return handle;
}

Result<ViewHandle> ViewCatalog::BeginBuild(const ViewDefinition& definition) {
  std::unique_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name() == definition.Name()) {
      if (entry->state == ViewState::kQuarantined) {
        // Reclaim the broken entry as the build's placeholder: same
        // handle, back to `kBuilding`, so the builder's eventual
        // `Publish` repairs the view in place. No generation bump —
        // a quarantined entry was already planner-invisible.
        entry->view = MaterializedView{
            definition, graph::PropertyGraph(graph::GraphSchema{}), {}};
        entry->maintainer.reset();
        entry->state = ViewState::kBuilding;
        entry->health = Status::OK();
        InvalidateSnapshot(entry->handle);
        return entry->handle;
      }
      return Status::AlreadyExists(
          "view '" + definition.Name() + "' already registered (" +
          ViewStateName(entry->state) + ")");
    }
  }
  auto entry = std::unique_ptr<CatalogEntry>(new CatalogEntry{
      next_handle_++,
      MaterializedView{definition, graph::PropertyGraph(graph::GraphSchema{}),
                       {}},
      graph::GraphStats{}, nullptr});
  entry->state = ViewState::kBuilding;
  ViewHandle handle = entry->handle;
  entries_.push_back(std::move(entry));
  // No generation bump: nothing planner-visible changed, so cached plans
  // stay exactly as valid as they were.
  return handle;
}

Status ViewCatalog::Publish(ViewHandle handle, MaterializedView built) {
  std::unique_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->handle != handle) continue;
    if (entry->state != ViewState::kBuilding) {
      return Status::FailedPrecondition("view '" + entry->name() +
                                        "' is not in the building state");
    }
    entry->view = std::move(built);
    entry->maintainer =
        ViewMaintainer::SupportsKind(entry->view.definition.kind)
            ? std::make_unique<ViewMaintainer>(base_, &entry->view)
            : nullptr;
    RefreshStats(entry.get());
    entry->state = ViewState::kReady;
    BumpGeneration();
    // Defensive: a placeholder has no snapshot to patch from, and the
    // published graph shares no lineage with anything cached.
    InvalidateSnapshot(handle);
    return Status::OK();
  }
  return Status::NotFound("no catalog entry for the published handle");
}

Status ViewCatalog::AbortBuild(ViewHandle handle) {
  std::unique_lock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->handle != handle) continue;
    if ((*it)->state != ViewState::kBuilding) {
      return Status::FailedPrecondition("view '" + (*it)->name() +
                                        "' is not in the building state");
    }
    entries_.erase(it);
    // No generation bump: the placeholder was never planner-visible.
    return Status::OK();
  }
  return Status::NotFound("no catalog entry for the aborted handle");
}

void ViewCatalog::QuarantineLocked(CatalogEntry* entry, Status reason) {
  entry->state = ViewState::kQuarantined;
  entry->health = std::move(reason);
  // The maintainer's indexes describe a view that can no longer be kept
  // exact; a reclaim rebuilds both from scratch.
  entry->maintainer.reset();
  quarantine_events_.fetch_add(1, std::memory_order_relaxed);
  InvalidateSnapshot(entry->handle);
  // Cached plans that routed queries to this view must stop matching.
  BumpGeneration();
}

Status ViewCatalog::Quarantine(ViewHandle handle, Status reason) {
  std::unique_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->handle != handle) continue;
    if (entry->state == ViewState::kQuarantined) return Status::OK();
    QuarantineLocked(entry.get(), std::move(reason));
    return Status::OK();
  }
  return Status::NotFound("no catalog entry for the quarantined handle");
}

Status ViewCatalog::Remove(const std::string& name) {
  std::unique_lock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->name() == name) {
      if ((*it)->state == ViewState::kBuilding) {
        return Status::FailedPrecondition(
            "view '" + name +
            "' is still building; wait for the build to publish "
            "(Engine::WaitForBuilds) and retry the removal");
      }
      (*it)->state = ViewState::kDropping;
      ViewHandle handle = (*it)->handle;
      entries_.erase(it);
      {
        // Handles are never reused, so the dropped slot can only leak —
        // reclaim it eagerly.
        std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);
        snapshots_.erase(handle);
      }
      BumpGeneration();
      return Status::OK();
    }
  }
  return Status::NotFound("view '" + name + "' is not in the catalog");
}

Status ViewCatalog::RefreshAll() {
  std::unique_lock lock(mu_);
  // Unconditional: even a no-op refresh may follow base-graph changes
  // that shifted raw-plan costs.
  BumpGeneration();
  for (const auto& entry : entries_) {
    // In-flight builds catch up at publish time; there is no view graph
    // to refresh yet.
    if (entry->state != ViewState::kReady) continue;
    if (entry->maintainer != nullptr) {
      // CatchUp only ever *appends* to the view (it replays insertions
      // past the watermark), which the snapshot patch path discovers
      // from id-space growth — the view's snapshot trail stays valid.
      Result<MaintenanceStats> stats = entry->maintainer->CatchUp();
      if (stats.ok()) {
        if (stats->edges_added + stats->edges_removed +
                stats->edges_updated + stats->vertices_added +
                stats->vertices_removed ==
                0 &&
            !StatsAreStale(*entry)) {
          // Nothing changed now and no drift was deferred by the
          // delta path: stats are exact already.
          continue;
        }
        RefreshStats(entry.get());
        continue;
      }
      if (stats.status().code() != StatusCode::kFailedPrecondition) {
        return stats.status();
      }
      // The base graph saw removals the maintainer never heard about
      // (e.g. a MutateBaseGraph writer deleting edges directly): the
      // view is unreconstructible incrementally — rebuild it rather
      // than serve stale results.
    }
    // Invalidate before rebuilding so a Rebuild failure cannot leave a
    // patchable slot pointing at a replaced (or half-replaced) graph.
    InvalidateSnapshot(entry->handle);
    KASKADE_RETURN_IF_ERROR(Rebuild(*base_, entry.get()));
    RefreshStats(entry.get());
  }
  return Status::OK();
}

Result<DeltaMaintenanceReport> ViewCatalog::ApplyBaseDelta(
    const graph::GraphDelta& delta) {
  return ApplyBaseDelta(delta,
                        std::make_shared<const graph::DeltaFootprint>(delta));
}

Result<DeltaMaintenanceReport> ViewCatalog::ApplyBaseDelta(
    const graph::GraphDelta& delta, graph::DeltaFootprintPtr footprint) {
  std::unique_lock lock(mu_);
  // One generation bump covers the whole batch — plans cached against
  // the pre-delta catalog stop matching exactly once.
  BumpGeneration();
  // The footprint describes exactly how the base graph moved: record it
  // on the base snapshot's delta trail so the next BaseSnapshot patches
  // instead of rebuilding.
  NoteBaseDelta(footprint);
  DeltaMaintenanceReport report;
  const size_t inserts = delta.edge_inserts.size();
  const size_t removals = delta.edge_removals.size();
  std::vector<graph::EdgeId> removed_view_edges;
  for (const auto& entry : entries_) {
    // kBuilding placeholders are invisible to maintenance (the engine's
    // pending-delta log replays this batch onto them at publish time),
    // and kQuarantined entries are out of service entirely.
    if (entry->state != ViewState::kReady) continue;
    if (fault_hooks_.enabled()) {
      Status injected =
          fault_hooks_.Fire(FaultSite::kMaintainerApply, entry->name());
      if (!injected.ok()) {
        // The injected failure stands in for a maintenance pass that
        // left the view unreconstructible: quarantine it and keep
        // maintaining the rest of the batch.
        QuarantineLocked(entry.get(), std::move(injected));
        ++report.views_quarantined;
        continue;
      }
    }
    bool incremental =
        entry->maintainer != nullptr &&
        !PreferRematerialization(*base_, entry->view.definition, inserts,
                                 removals);
    if (incremental) {
      removed_view_edges.clear();
      entry->maintainer->set_removed_edge_sink(&removed_view_edges);
      Result<MaintenanceStats> stats = entry->maintainer->ApplyDelta(delta);
      entry->maintainer->set_removed_edge_sink(nullptr);
      if (stats.ok()) {
        NoteViewDelta(entry->handle, std::move(removed_view_edges));
        removed_view_edges = {};
        report.stats += *stats;
        ++report.views_incremental;
        // Re-weighted edges (edges_updated) never move the degree
        // profile, and small topology changes drift the statistics too
        // little to change plan choice — only recompute (O(V log V))
        // once the view drifted past the staleness threshold.
        bool topology_changed = stats->edges_added + stats->edges_removed +
                                    stats->vertices_added +
                                    stats->vertices_removed !=
                                0;
        if (topology_changed && StatsAreStale(*entry)) {
          RefreshStats(entry.get());
        }
        continue;
      }
      if (stats.status().code() != StatusCode::kFailedPrecondition) {
        // Internal errors signal corrupt maintenance state: the failed
        // pass may have mutated the view in ways neither the trail nor
        // a maintainer rebuild can describe. Quarantine the view rather
        // than failing the whole write — the base graph and every other
        // view are already exact, and queries that would have used this
        // view fall back to the base graph.
        QuarantineLocked(entry.get(), stats.status());
        ++report.views_quarantined;
        continue;
      }
      // A FailedPrecondition pass may have left the view half-updated;
      // rebuilding restores exactness instead of stranding a stale
      // entry behind the already-mutated base graph.
    }
    // Invalidate before rebuilding: the failed pass above may already
    // have tombstoned view edges the trail never recorded, and the
    // rebuild replaces the graph wholesale — either way the old
    // snapshot cannot be patched forward, even if Rebuild errors out.
    InvalidateSnapshot(entry->handle);
    Status rebuilt = Rebuild(*base_, entry.get());
    if (!rebuilt.ok()) {
      // The half-updated view could not be restored to exactness:
      // quarantine it so it is never served, and keep going — failing
      // the write here would strand every *other* view behind an
      // already-mutated base graph.
      QuarantineLocked(entry.get(), std::move(rebuilt));
      ++report.views_quarantined;
      continue;
    }
    ++report.views_rematerialized;
    RefreshStats(entry.get());
  }
  return report;
}

size_t ViewCatalog::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

size_t ViewCatalog::num_ready() const {
  std::shared_lock lock(mu_);
  size_t count = 0;
  for (const auto& entry : entries_) {
    if (entry->state == ViewState::kReady) ++count;
  }
  return count;
}

size_t ViewCatalog::num_quarantined() const {
  std::shared_lock lock(mu_);
  size_t count = 0;
  for (const auto& entry : entries_) {
    if (entry->state == ViewState::kQuarantined) ++count;
  }
  return count;
}

const CatalogEntry* ViewCatalog::Find(const std::string& name) const {
  std::shared_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name() == name) return entry.get();
  }
  return nullptr;
}

const CatalogEntry* ViewCatalog::Get(ViewHandle handle) const {
  std::shared_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->handle == handle) return entry.get();
  }
  return nullptr;
}

std::vector<const CatalogEntry*> ViewCatalog::Entries() const {
  std::shared_lock lock(mu_);
  std::vector<const CatalogEntry*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  return out;
}

void ViewCatalog::ObservePatch(const graph::CsrPatchStats& stats) const {
  patch_segments_copied_.fetch_add(stats.segments_copied,
                                   std::memory_order_relaxed);
  patch_segments_shared_.fetch_add(stats.segments_shared,
                                   std::memory_order_relaxed);
  patch_bytes_copied_.fetch_add(stats.bytes_copied,
                                std::memory_order_relaxed);
  if (!patch_options_.enabled()) return;
  // Auto-tune the effective dirty-fraction threshold from what patches
  // actually cost — segments copied, not vertices dirtied. While the
  // copy-fraction EWMA stays low, patches are cheap even well past the
  // configured vertex budget (clean segments are refcount shares), so
  // the threshold climbs; when patches approach copying the whole
  // segment set they are no cheaper than rebuilds and it falls back
  // toward the configured floor. The configured value is a floor, not
  // a setting the tuner can undercut, so tightly-tuned callers only
  // ever see patching become *more* willing.
  const double ratio =
      stats.total_segments > 0
          ? static_cast<double>(stats.segments_copied) /
                static_cast<double>(stats.total_segments)
          : 1.0;
  std::lock_guard<std::mutex> lock(tune_mu_);
  copy_ratio_ewma_ = 0.8 * copy_ratio_ewma_ + 0.2 * ratio;
  const double floor = patch_options_.max_dirty_fraction;
  if (!stats.full_rebuild && copy_ratio_ewma_ < 0.5) {
    effective_dirty_fraction_ =
        std::min(0.95, std::max(effective_dirty_fraction_ * 1.25, floor));
  } else if (copy_ratio_ewma_ > 0.9) {
    effective_dirty_fraction_ =
        std::max(floor, effective_dirty_fraction_ * 0.8);
  }
}

std::shared_ptr<const graph::CsrGraph> ViewCatalog::SnapshotOf(
    ViewHandle handle, const graph::PropertyGraph& g) const {
  // The caller excludes concurrent catalog/base mutation (Engine reader
  // discipline), so the generation cannot move during this call.
  const uint64_t gen = generation();
  if (handle == kInvalidViewHandle && store_ != nullptr) {
    // Sharded base pipeline: stale shards refresh under their own
    // writer locks (disjoint shards concurrently), dirty segments
    // rebuild, clean ones share by refcount. Views keep the
    // single-slot path below.
    SegmentStore::Outcome outcome;
    std::shared_ptr<const graph::CsrGraph> snap =
        store_->Snapshot(gen, &outcome);
    switch (outcome) {
      case SegmentStore::Outcome::kHit:
        snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
        break;
      case SegmentStore::Outcome::kPatch:
        snapshot_builds_.fetch_add(1, std::memory_order_relaxed);
        snapshot_patches_.fetch_add(1, std::memory_order_relaxed);
        break;
      case SegmentStore::Outcome::kFullBuild:
        snapshot_builds_.fetch_add(1, std::memory_order_relaxed);
        snapshot_full_builds_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return snap;
  }
  std::shared_ptr<const graph::CsrGraph> prev;
  std::vector<graph::EdgeId> removals;
  bool patch = false;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    SnapshotSlot& slot = snapshots_[handle];
    if (slot.csr != nullptr && slot.csr_generation == gen) {
      snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
      return slot.csr;
    }
    if (slot.csr != nullptr && slot.patchable &&
        slot.head_generation == gen) {
      // The trail covers everything between the cached snapshot and the
      // current generation. When nothing actually changed for this
      // handle (the generation moved for unrelated reasons — another
      // view registered, say), the old snapshot is still exact:
      // re-stamp it instead of producing anything.
      const bool unchanged =
          slot.trail_batches == 0 &&
          slot.csr->edge_id_space() == g.NumEdges() &&
          slot.csr->NumVertices() == g.NumVertices() &&
          slot.csr->NumEdges() == g.NumLiveEdges();
      if (unchanged) {
        slot.csr_generation = gen;
        snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
        return slot.csr;
      }
      patch = true;
      prev = slot.csr;
      if (handle == kInvalidViewHandle) {
        removals.reserve(slot.trail_removals);
        for (const graph::DeltaFootprintPtr& batch : slot.base_trail) {
          removals.insert(removals.end(), batch->edge_removals.begin(),
                          batch->edge_removals.end());
        }
      } else {
        removals = slot.view_removals;
      }
    }
  }
  if (fault_hooks_.enabled()) {
    Status injected = fault_hooks_.Fire(
        FaultSite::kSnapshotBuild,
        handle == kInvalidViewHandle ? "base" : "view snapshot");
    if (!injected.ok()) {
      // A failed snapshot production is fully recoverable: the caller
      // sees no CSR and the query layer degrades to the legacy
      // (non-CSR) MATCH backend — slower, still exact. Nothing was
      // cached, so the next request retries the build.
      snapshot_build_failures_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  }
  // Produce outside the cache mutex: a miss on one handle must not
  // stall cache hits on every other handle behind the build. Concurrent
  // missers on the same (handle, generation) may race duplicate
  // (identical) snapshots; the first to publish wins and the losers
  // adopt it.
  std::shared_ptr<const graph::CsrGraph> built;
  bool patched = false;
  if (patch) {
    // O(|delta|) path: derive the next snapshot from the previous one
    // through the merged trail (falls back internally past the dirty
    // threshold).
    graph::CsrPatchStats patch_stats;
    graph::CsrPatchOptions effective = patch_options_;
    effective.max_dirty_fraction = effective_max_dirty_fraction();
    built = std::make_shared<const graph::CsrGraph>(graph::CsrGraph::PatchedFrom(
        *prev, g, removals, effective, &patch_stats));
    patched = !patch_stats.full_rebuild;
    ObservePatch(patch_stats);
  } else {
    built =
        std::make_shared<const graph::CsrGraph>(graph::CsrGraph::Build(g));
  }
  snapshot_builds_.fetch_add(1, std::memory_order_relaxed);
  (patched ? snapshot_patches_ : snapshot_full_builds_)
      .fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  SnapshotSlot& slot = snapshots_[handle];
  if (slot.csr != nullptr && slot.csr_generation == gen) return slot.csr;
  slot.csr = std::move(built);
  slot.csr_generation = gen;
  slot.head_generation = gen;
  slot.patchable = patch_options_.enabled();
  slot.trail_batches = slot.trail_removals = 0;
  slot.base_trail.clear();
  slot.view_removals.clear();
  return slot.csr;
}

std::shared_ptr<const graph::CsrGraph> ViewCatalog::BaseSnapshot() const {
  return SnapshotOf(kInvalidViewHandle, *base_);
}

std::shared_ptr<const graph::CsrGraph> ViewCatalog::SnapshotFor(
    ViewHandle handle) const {
  const CatalogEntry* entry = Get(handle);
  if (entry == nullptr) return nullptr;
  return SnapshotOf(handle, entry->view.graph);
}

}  // namespace kaskade::core
