#include "core/catalog.h"

#include <mutex>
#include <utility>

#include "core/cost_model.h"

namespace kaskade::core {

namespace {

/// Recomputes `entry`'s statistics and records the live counts they
/// were computed at.
void RefreshStats(CatalogEntry* entry) {
  entry->stats = graph::GraphStats::Compute(entry->view.graph);
  entry->stats_live_vertices = entry->view.graph.NumLiveVertices();
  entry->stats_live_edges = entry->view.graph.NumLiveEdges();
}

/// True when the view drifted far enough (>10%, with a small-view
/// floor) from the state its statistics were computed at that plan
/// costing would be misled.
bool StatsAreStale(const CatalogEntry& entry) {
  auto drifted = [](size_t now, size_t then) {
    size_t diff = now > then ? now - then : then - now;
    return diff * 10 > then + 32;
  };
  return drifted(entry.view.graph.NumLiveVertices(),
                 entry.stats_live_vertices) ||
         drifted(entry.view.graph.NumLiveEdges(), entry.stats_live_edges);
}

/// Re-materializes `entry` over `base` and re-attaches a maintainer
/// when the kind supports one (a rebuilt view invalidates any previous
/// maintainer's indexes).
Status Rebuild(const graph::PropertyGraph& base, CatalogEntry* entry) {
  Result<MaterializedView> fresh = Materialize(base, entry->view.definition);
  if (!fresh.ok()) return fresh.status();
  entry->view = std::move(*fresh);
  entry->maintainer =
      ViewMaintainer::SupportsKind(entry->view.definition.kind)
          ? std::make_unique<ViewMaintainer>(&base, &entry->view)
          : nullptr;
  return Status::OK();
}

}  // namespace

const char* ViewStateName(ViewState state) {
  switch (state) {
    case ViewState::kBuilding:
      return "building";
    case ViewState::kReady:
      return "ready";
    case ViewState::kDropping:
      return "dropping";
  }
  return "unknown";
}

Result<ViewHandle> ViewCatalog::Add(const ViewDefinition& definition) {
  std::unique_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name() == definition.Name()) {
      return Status::AlreadyExists("view '" + definition.Name() +
                                   "' already materialized");
    }
  }
  Result<MaterializedView> view = Materialize(*base_, definition);
  if (!view.ok()) return view.status();

  auto entry = std::unique_ptr<CatalogEntry>(new CatalogEntry{
      next_handle_++, std::move(*view), graph::GraphStats{}, nullptr});
  RefreshStats(entry.get());
  // A null maintainer slot means RefreshAll re-materializes instead.
  if (ViewMaintainer::SupportsKind(entry->view.definition.kind)) {
    entry->maintainer = std::make_unique<ViewMaintainer>(base_, &entry->view);
  }
  ViewHandle handle = entry->handle;
  entries_.push_back(std::move(entry));
  BumpGeneration();
  return handle;
}

Result<ViewHandle> ViewCatalog::BeginBuild(const ViewDefinition& definition) {
  std::unique_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name() == definition.Name()) {
      return Status::AlreadyExists(
          "view '" + definition.Name() + "' already registered (" +
          ViewStateName(entry->state) + ")");
    }
  }
  auto entry = std::unique_ptr<CatalogEntry>(new CatalogEntry{
      next_handle_++,
      MaterializedView{definition, graph::PropertyGraph(graph::GraphSchema{}),
                       {}},
      graph::GraphStats{}, nullptr});
  entry->state = ViewState::kBuilding;
  ViewHandle handle = entry->handle;
  entries_.push_back(std::move(entry));
  // No generation bump: nothing planner-visible changed, so cached plans
  // stay exactly as valid as they were.
  return handle;
}

Status ViewCatalog::Publish(ViewHandle handle, MaterializedView built) {
  std::unique_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->handle != handle) continue;
    if (entry->state != ViewState::kBuilding) {
      return Status::FailedPrecondition("view '" + entry->name() +
                                        "' is not in the building state");
    }
    entry->view = std::move(built);
    entry->maintainer =
        ViewMaintainer::SupportsKind(entry->view.definition.kind)
            ? std::make_unique<ViewMaintainer>(base_, &entry->view)
            : nullptr;
    RefreshStats(entry.get());
    entry->state = ViewState::kReady;
    BumpGeneration();
    return Status::OK();
  }
  return Status::NotFound("no catalog entry for the published handle");
}

Status ViewCatalog::AbortBuild(ViewHandle handle) {
  std::unique_lock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->handle != handle) continue;
    if ((*it)->state != ViewState::kBuilding) {
      return Status::FailedPrecondition("view '" + (*it)->name() +
                                        "' is not in the building state");
    }
    entries_.erase(it);
    // No generation bump: the placeholder was never planner-visible.
    return Status::OK();
  }
  return Status::NotFound("no catalog entry for the aborted handle");
}

Status ViewCatalog::Remove(const std::string& name) {
  std::unique_lock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->name() == name) {
      if ((*it)->state == ViewState::kBuilding) {
        return Status::FailedPrecondition(
            "view '" + name +
            "' is still building; wait for the build to publish "
            "(Engine::WaitForBuilds) and retry the removal");
      }
      (*it)->state = ViewState::kDropping;
      ViewHandle handle = (*it)->handle;
      entries_.erase(it);
      {
        // Handles are never reused, so the dropped slot can only leak —
        // reclaim it eagerly.
        std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);
        snapshots_.erase(handle);
      }
      BumpGeneration();
      return Status::OK();
    }
  }
  return Status::NotFound("view '" + name + "' is not in the catalog");
}

Status ViewCatalog::RefreshAll() {
  std::unique_lock lock(mu_);
  // Unconditional: even a no-op refresh may follow base-graph changes
  // that shifted raw-plan costs.
  BumpGeneration();
  for (const auto& entry : entries_) {
    // In-flight builds catch up at publish time; there is no view graph
    // to refresh yet.
    if (entry->state != ViewState::kReady) continue;
    if (entry->maintainer != nullptr) {
      Result<MaintenanceStats> stats = entry->maintainer->CatchUp();
      if (stats.ok()) {
        if (stats->edges_added + stats->edges_removed +
                stats->edges_updated + stats->vertices_added +
                stats->vertices_removed ==
                0 &&
            !StatsAreStale(*entry)) {
          // Nothing changed now and no drift was deferred by the
          // delta path: stats are exact already.
          continue;
        }
        RefreshStats(entry.get());
        continue;
      }
      if (stats.status().code() != StatusCode::kFailedPrecondition) {
        return stats.status();
      }
      // The base graph saw removals the maintainer never heard about
      // (e.g. a MutateBaseGraph writer deleting edges directly): the
      // view is unreconstructible incrementally — rebuild it rather
      // than serve stale results.
    }
    KASKADE_RETURN_IF_ERROR(Rebuild(*base_, entry.get()));
    RefreshStats(entry.get());
  }
  return Status::OK();
}

Result<DeltaMaintenanceReport> ViewCatalog::ApplyBaseDelta(
    const graph::GraphDelta& delta) {
  std::unique_lock lock(mu_);
  // One generation bump covers the whole batch — plans cached against
  // the pre-delta catalog stop matching exactly once.
  BumpGeneration();
  DeltaMaintenanceReport report;
  const size_t inserts = delta.edge_inserts.size();
  const size_t removals = delta.edge_removals.size();
  for (const auto& entry : entries_) {
    // kBuilding placeholders are invisible to maintenance; the engine's
    // pending-delta log replays this batch onto them at publish time.
    if (entry->state != ViewState::kReady) continue;
    bool incremental =
        entry->maintainer != nullptr &&
        !PreferRematerialization(*base_, entry->view.definition, inserts,
                                 removals);
    if (incremental) {
      Result<MaintenanceStats> stats = entry->maintainer->ApplyDelta(delta);
      if (stats.ok()) {
        report.stats += *stats;
        ++report.views_incremental;
        // Re-weighted edges (edges_updated) never move the degree
        // profile, and small topology changes drift the statistics too
        // little to change plan choice — only recompute (O(V log V))
        // once the view drifted past the staleness threshold.
        bool topology_changed = stats->edges_added + stats->edges_removed +
                                    stats->vertices_added +
                                    stats->vertices_removed !=
                                0;
        if (topology_changed && StatsAreStale(*entry)) {
          RefreshStats(entry.get());
        }
        continue;
      }
      if (stats.status().code() != StatusCode::kFailedPrecondition) {
        // Internal errors signal corrupt maintenance state (a bug) —
        // propagate, as RefreshAll does, rather than masking it as a
        // routine re-materialization.
        return stats.status();
      }
      // A FailedPrecondition pass may have left the view half-updated;
      // rebuilding restores exactness instead of stranding a stale
      // entry behind the already-mutated base graph.
    }
    KASKADE_RETURN_IF_ERROR(Rebuild(*base_, entry.get()));
    ++report.views_rematerialized;
    RefreshStats(entry.get());
  }
  return report;
}

size_t ViewCatalog::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

size_t ViewCatalog::num_ready() const {
  std::shared_lock lock(mu_);
  size_t count = 0;
  for (const auto& entry : entries_) {
    if (entry->state == ViewState::kReady) ++count;
  }
  return count;
}

const CatalogEntry* ViewCatalog::Find(const std::string& name) const {
  std::shared_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name() == name) return entry.get();
  }
  return nullptr;
}

const CatalogEntry* ViewCatalog::Get(ViewHandle handle) const {
  std::shared_lock lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->handle == handle) return entry.get();
  }
  return nullptr;
}

std::vector<const CatalogEntry*> ViewCatalog::Entries() const {
  std::shared_lock lock(mu_);
  std::vector<const CatalogEntry*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  return out;
}

std::shared_ptr<const graph::CsrGraph> ViewCatalog::SnapshotOf(
    ViewHandle handle, const graph::PropertyGraph& g) const {
  // The caller excludes concurrent catalog/base mutation (Engine reader
  // discipline), so the generation cannot move during this call.
  const uint64_t gen = generation();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    auto it = snapshots_.find(handle);
    if (it != snapshots_.end() && it->second.csr != nullptr &&
        it->second.generation == gen) {
      snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.csr;
    }
  }
  // Build outside the cache mutex: a miss on one handle must not stall
  // cache hits on every other handle behind an O(|V|+|E|) build.
  // Concurrent missers on the same (handle, generation) may race
  // duplicate builds of identical snapshots; the first to publish wins
  // and the losers adopt it.
  auto built =
      std::make_shared<const graph::CsrGraph>(graph::CsrGraph::Build(g));
  snapshot_builds_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  CachedSnapshot& slot = snapshots_[handle];
  if (slot.csr != nullptr && slot.generation == gen) return slot.csr;
  slot.csr = std::move(built);
  slot.generation = gen;
  return slot.csr;
}

std::shared_ptr<const graph::CsrGraph> ViewCatalog::BaseSnapshot() const {
  return SnapshotOf(kInvalidViewHandle, *base_);
}

std::shared_ptr<const graph::CsrGraph> ViewCatalog::SnapshotFor(
    ViewHandle handle) const {
  const CatalogEntry* entry = Get(handle);
  if (entry == nullptr) return nullptr;
  return SnapshotOf(handle, entry->view.graph);
}

}  // namespace kaskade::core
