#include "core/planner.h"

#include <algorithm>

#include "core/rewriter.h"
#include "graph/stats.h"
#include "query/parser.h"

namespace kaskade::core {
namespace {

/// Serializes everything of a MATCH except its predicate constants.
/// Variable names are part of the shape: the fused runner resolves every
/// member's WHERE and RETURN against one shared pattern, and output
/// column names must match each member's solo run.
std::string MatchShapeKey(const query::MatchQuery& match) {
  std::string key;
  key.reserve(64);
  for (const query::NodePattern& n : match.nodes) {
    key += "n|";
    key += n.name;
    key += '|';
    key += n.type;
    key += ';';
  }
  for (const query::EdgePattern& e : match.edges) {
    key += "e|";
    key += e.from;
    key += '|';
    key += e.to;
    key += '|';
    key += e.type;
    key += '|';
    if (e.variable_length) {
      key += 'v';
      key += std::to_string(e.min_hops);
      key += "..";
      key += std::to_string(e.max_hops);
    } else {
      key += 'f';
    }
    key += ';';
  }
  for (const query::Condition& c : match.where) {
    key += "w|";
    key += c.lhs.base;
    key += '|';
    key += c.lhs.property;
    key += '|';
    key += std::to_string(static_cast<int>(c.op));
    key += ';';
  }
  for (const query::ReturnItem& r : match.return_items) {
    key += "r|";
    key += r.variable;
    key += '|';
    key += r.alias;
    key += ';';
  }
  return key;
}

}  // namespace

Planner::Planner(PlannerOptions options)
    : options_(options),
      shards_(std::max<size_t>(1, options.cache_shards)) {
  per_shard_capacity_ =
      (options_.cache_capacity + shards_.size() - 1) / shards_.size();
}

Status Planner::ChoosePlan(const query::Query& query,
                           const graph::PropertyGraph& base,
                           const ViewCatalog& catalog, Plan* plan) const {
  // Plan 0: the raw graph.
  graph::GraphStats base_stats = graph::GraphStats::Compute(base);
  plan->estimated_cost =
      query::EstimateEvalCost(query, base, base_stats, options_.eval_cost);
  plan->view_name.clear();
  plan->executed_query = query.ToString();
  plan->canonical_query = plan->executed_query;
  plan->planned_generation = catalog.generation();
  plan->shape_key.clear();
  plan->match_ast.reset();
  if (query.is_match()) {
    plan->match_ast = std::make_shared<query::MatchQuery>(query.match());
  }

  // Plans 1..n: one per *ready* materialized view (single-view
  // rewritings, §V-C). Entries mid-build or mid-drop are never planned
  // against.
  for (const CatalogEntry* entry : catalog.Entries()) {
    if (entry->state != ViewState::kReady) continue;
    Result<query::Query> rewritten =
        RewriteQueryWithView(query, entry->view.definition, base.schema());
    if (!rewritten.ok()) continue;
    double cost = query::EstimateEvalCost(*rewritten, entry->view.graph,
                                          entry->stats, options_.eval_cost);
    if (cost < plan->estimated_cost) {
      plan->estimated_cost = cost;
      plan->view_name = entry->name();
      plan->executed_query = rewritten->ToString();
      // The winning AST must be captured here: `rewritten` dies with
      // this loop iteration.
      plan->match_ast =
          rewritten->is_match()
              ? std::make_shared<query::MatchQuery>(rewritten->match())
              : nullptr;
    }
  }
  if (plan->match_ast != nullptr) {
    plan->shape_key = MatchShapeKey(*plan->match_ast);
  }
  return Status::OK();
}

Result<Plan> Planner::PlanFor(const std::string& query_text,
                              const graph::PropertyGraph& base,
                              const ViewCatalog& catalog) {
  CacheKey key{query_text, catalog.generation()};
  const bool cache_enabled = options_.cache_capacity > 0;
  if (cache_enabled) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  KASKADE_ASSIGN_OR_RETURN(query::Query query,
                           query::ParseQueryText(query_text));
  Plan plan;
  KASKADE_RETURN_IF_ERROR(ChoosePlan(query, base, catalog, &plan));

  if (cache_enabled) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.find(key) == shard.index.end()) {
      shard.lru.emplace_front(key, plan);
      shard.index.emplace(key, shard.lru.begin());
      while (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
      }
    }
  }
  return plan;
}

void Planner::ClearCache() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t Planner::cache_size() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace kaskade::core
