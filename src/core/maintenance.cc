#include "core/maintenance.h"

#include <algorithm>
#include <functional>

namespace kaskade::core {

using graph::EdgeId;
using graph::EdgeRecord;
using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;

bool ViewMaintainer::SupportsKind(ViewKind kind) {
  return kind == ViewKind::kKHopConnector ||
         kind == ViewKind::kVertexInclusionSummarizer ||
         kind == ViewKind::kVertexRemovalSummarizer ||
         kind == ViewKind::kEdgeInclusionSummarizer ||
         kind == ViewKind::kEdgeRemovalSummarizer;
}

ViewMaintainer::ViewMaintainer(const PropertyGraph* base,
                               MaterializedView* view)
    : base_(base), view_(view) {
  const ViewDefinition& def = view_->definition;
  const PropertyGraph& vg = view_->graph;
  // Reverse vertex mapping.
  for (VertexId v = 0; v < vg.NumVertices(); ++v) {
    base_to_view_.emplace(view_->view_to_base[v], v);
  }
  if (IsConnector(def.kind)) {
    connector_type_ = vg.schema().FindEdgeType(def.EdgeName());
    source_type_ = base_->schema().FindVertexType(def.source_type);
    target_type_ = base_->schema().FindVertexType(def.target_type);
    for (EdgeId e = 0; e < vg.NumEdges(); ++e) {
      const EdgeRecord& rec = vg.Edge(e);
      connector_edges_.emplace(std::make_pair(rec.source, rec.target), e);
    }
  } else {
    // Filter summarizers: precompute keep masks (mirrors the
    // materializer's logic).
    const graph::GraphSchema& schema = base_->schema();
    keep_vertex_type_.assign(schema.num_vertex_types(), true);
    keep_edge_type_.assign(schema.num_edge_types(), true);
    auto in_list = [&](const std::string& name) {
      return std::find(def.type_list.begin(), def.type_list.end(), name) !=
             def.type_list.end();
    };
    switch (def.kind) {
      case ViewKind::kVertexInclusionSummarizer:
        for (size_t t = 0; t < schema.num_vertex_types(); ++t) {
          keep_vertex_type_[t] =
              in_list(schema.vertex_type_name(static_cast<uint32_t>(t)));
        }
        break;
      case ViewKind::kVertexRemovalSummarizer:
        for (size_t t = 0; t < schema.num_vertex_types(); ++t) {
          keep_vertex_type_[t] =
              !in_list(schema.vertex_type_name(static_cast<uint32_t>(t)));
        }
        break;
      case ViewKind::kEdgeInclusionSummarizer:
        for (size_t t = 0; t < schema.num_edge_types(); ++t) {
          keep_edge_type_[t] =
              in_list(schema.edge_type(static_cast<uint32_t>(t)).name);
        }
        break;
      case ViewKind::kEdgeRemovalSummarizer:
        for (size_t t = 0; t < schema.num_edge_types(); ++t) {
          keep_edge_type_[t] =
              !in_list(schema.edge_type(static_cast<uint32_t>(t)).name);
        }
        break;
      default:
        break;
    }
    // Edges only survive when both endpoint types survive.
    for (size_t t = 0; t < schema.num_edge_types(); ++t) {
      const graph::EdgeTypeDecl& decl =
          schema.edge_type(static_cast<uint32_t>(t));
      if (!keep_vertex_type_[decl.source_type] ||
          !keep_vertex_type_[decl.target_type]) {
        keep_edge_type_[t] = false;
      }
    }
  }
  watermark_ = static_cast<EdgeId>(base_->NumEdges());
  vertex_watermark_ = static_cast<VertexId>(base_->NumVertices());
}

VertexId ViewMaintainer::ViewVertexFor(VertexId base_vertex,
                                       MaintenanceStats* stats) {
  auto it = base_to_view_.find(base_vertex);
  if (it != base_to_view_.end()) return it->second;
  PropertyGraph& vg = view_->graph;
  const std::string& type_name =
      base_->schema().vertex_type_name(base_->VertexType(base_vertex));
  graph::VertexTypeId view_type = vg.schema().FindVertexType(type_name);
  graph::PropertyMap props = base_->VertexProperties(base_vertex);
  props.Set("orig_id", PropertyValue(static_cast<int64_t>(base_vertex)));
  VertexId vid = vg.AddVertexOfType(view_type, std::move(props));
  base_to_view_.emplace(base_vertex, vid);
  view_->view_to_base.push_back(base_vertex);
  ++stats->vertices_added;
  return vid;
}

Status ViewMaintainer::UpsertConnectorEdge(VertexId base_src,
                                           VertexId base_dst, uint64_t paths,
                                           MaintenanceStats* stats) {
  PropertyGraph& vg = view_->graph;
  VertexId src = ViewVertexFor(base_src, stats);
  VertexId dst = ViewVertexFor(base_dst, stats);
  auto key = std::make_pair(src, dst);
  auto it = connector_edges_.find(key);
  if (it != connector_edges_.end()) {
    int64_t current = vg.EdgeProperty(it->second, "paths").as_int();
    KASKADE_RETURN_IF_ERROR(vg.SetEdgeProperty(
        it->second, "paths",
        PropertyValue(current + static_cast<int64_t>(paths))));
    ++stats->edges_updated;
    return Status::OK();
  }
  graph::PropertyMap props;
  props.Set("paths", PropertyValue(static_cast<int64_t>(paths)));
  KASKADE_ASSIGN_OR_RETURN(
      EdgeId e, vg.AddEdgeOfType(src, dst, connector_type_, std::move(props)));
  connector_edges_.emplace(key, e);
  ++stats->edges_added;
  return Status::OK();
}

Result<MaintenanceStats> ViewMaintainer::MaintainConnector(EdgeId e) {
  const ViewDefinition& def = view_->definition;
  const EdgeRecord& rec = base_->Edge(e);
  const VertexId u = rec.source;
  const VertexId v = rec.target;
  const int k = def.k;
  MaintenanceStats stats;

  // Every new k-path decomposes as: s --(i edges)--> u --e--> v
  // --(k-1-i edges)--> t, with all vertices distinct except possibly
  // t == s (closed paths are contracted, matching the materializer).
  std::map<std::pair<VertexId, VertexId>, uint64_t> new_pairs;
  std::vector<std::vector<VertexId>> backward_paths;  // [u .. s]
  std::vector<VertexId> current{u};
  // Set per split: when the new edge is the *last* edge of the path
  // (forward_steps == 0), a backward extension may terminate at v itself,
  // forming the closed path v -> ... -> u -> v.
  bool closed_start_allowed = false;
  std::function<void(VertexId, int)> extend_back = [&](VertexId w, int left) {
    if (left == 0) {
      backward_paths.push_back(current);
      return;
    }
    for (EdgeId be : base_->InEdges(w)) {
      // Only edges inserted up to and including e may participate:
      // paths that use a *later* insertion are that insertion's delta
      // (prevents double counting during batch catch-up).
      if (be > e) continue;
      VertexId prev = base_->Edge(be).source;
      if (prev == v) {
        // v is already on the path; allowed only as the closed-path
        // start s == v, reached at the final backward step.
        if (closed_start_allowed && left == 1 &&
            (source_type_ == graph::kInvalidTypeId ||
             base_->VertexType(v) == source_type_) &&
            (target_type_ == graph::kInvalidTypeId ||
             base_->VertexType(v) == target_type_)) {
          ++new_pairs[{v, v}];
        }
        continue;
      }
      if (std::find(current.begin(), current.end(), prev) != current.end()) {
        continue;  // must stay simple
      }
      current.push_back(prev);
      extend_back(prev, left - 1);
      current.pop_back();
    }
  };

  for (int i = 0; i <= k - 1; ++i) {
    backward_paths.clear();
    current.assign(1, u);
    const int forward_steps = k - 1 - i;
    closed_start_allowed = forward_steps == 0;
    extend_back(u, i);
    for (const std::vector<VertexId>& back : backward_paths) {
      const VertexId s = back.back();  // path start
      if (source_type_ != graph::kInvalidTypeId &&
          base_->VertexType(s) != source_type_) {
        continue;
      }
      // Forward extension from v, avoiding every vertex of the backward
      // half and of the forward prefix; the start s is allowed only as
      // the final vertex (closed path).
      std::vector<VertexId> forward{v};
      std::function<void(VertexId, int)> extend_fwd = [&](VertexId w,
                                                          int left) {
        if (left == 0) {
          const VertexId t = w;
          if (target_type_ == graph::kInvalidTypeId ||
              base_->VertexType(t) == target_type_) {
            ++new_pairs[{s, t}];
          }
          return;
        }
        for (EdgeId fe : base_->OutEdges(w)) {
          if (fe > e) continue;  // see the backward-half comment
          VertexId next = base_->Edge(fe).target;
          bool in_back =
              std::find(back.begin(), back.end(), next) != back.end();
          bool in_fwd = std::find(forward.begin(), forward.end(), next) !=
                        forward.end();
          if (in_fwd) continue;
          if (in_back) {
            // Allowed only when it closes the full path at its very end.
            if (next == s && left == 1) {
              if (target_type_ == graph::kInvalidTypeId ||
                  base_->VertexType(s) == target_type_) {
                ++new_pairs[{s, s}];
              }
            }
            continue;
          }
          forward.push_back(next);
          extend_fwd(next, left - 1);
          forward.pop_back();
        }
      };
      if (forward_steps == 0) {
        // v itself is the endpoint.
        if (target_type_ == graph::kInvalidTypeId ||
            base_->VertexType(v) == target_type_) {
          ++new_pairs[{s, v}];
        }
      } else {
        extend_fwd(v, forward_steps);
      }
    }
  }

  for (const auto& [pair, paths] : new_pairs) {
    stats.paths_added += paths;
    KASKADE_RETURN_IF_ERROR(
        UpsertConnectorEdge(pair.first, pair.second, paths, &stats));
  }
  return stats;
}

Result<MaintenanceStats> ViewMaintainer::MaintainFilterSummarizer(EdgeId e) {
  MaintenanceStats stats;
  const ViewDefinition& def = view_->definition;
  const EdgeRecord& rec = base_->Edge(e);
  if (!keep_edge_type_[rec.type]) return stats;
  if (def.has_predicate()) {
    // Mirror the materializer's footnote-5 semantics.
    bool vertex_filter = def.kind == ViewKind::kVertexInclusionSummarizer ||
                         def.kind == ViewKind::kVertexRemovalSummarizer;
    if (vertex_filter) {
      for (VertexId endpoint : {rec.source, rec.target}) {
        if (!EvalPredicate(
                base_->VertexProperty(endpoint, def.predicate_property),
                def.predicate_op, def.predicate_value)) {
          return stats;
        }
      }
    } else if (!EvalPredicate(base_->EdgeProperty(e, def.predicate_property),
                              def.predicate_op, def.predicate_value)) {
      return stats;
    }
  }
  PropertyGraph& vg = view_->graph;
  VertexId src = ViewVertexFor(rec.source, &stats);
  VertexId dst = ViewVertexFor(rec.target, &stats);
  graph::EdgeTypeId et =
      vg.schema().FindEdgeType(base_->schema().edge_type(rec.type).name);
  if (et == graph::kInvalidTypeId) {
    return Status::Internal("summarizer view schema lost an edge type");
  }
  KASKADE_RETURN_IF_ERROR(
      vg.AddEdgeOfType(src, dst, et, base_->EdgeProperties(e)).status());
  ++stats.edges_added;
  return stats;
}

Result<MaintenanceStats> ViewMaintainer::OnEdgeAdded(EdgeId e) {
  if (e >= base_->NumEdges()) {
    return Status::OutOfRange("edge id not present in base graph");
  }
  if (e < watermark_) {
    return Status::InvalidArgument(
        "edge was already reflected in the view (ids must be reported "
        "once, in order)");
  }
  watermark_ = e + 1;
  const ViewDefinition& def = view_->definition;
  if (def.kind == ViewKind::kKHopConnector) return MaintainConnector(e);
  if (def.kind == ViewKind::kVertexInclusionSummarizer ||
      def.kind == ViewKind::kVertexRemovalSummarizer ||
      def.kind == ViewKind::kEdgeInclusionSummarizer ||
      def.kind == ViewKind::kEdgeRemovalSummarizer) {
    return MaintainFilterSummarizer(e);
  }
  return Status::Unimplemented(
      "incremental maintenance supports k-hop connectors and filter "
      "summarizers; re-materialize other view kinds");
}

Result<MaintenanceStats> ViewMaintainer::CatchUp() {
  MaintenanceStats total;
  // Vertices first (summarizers copy kept vertices even when isolated).
  const ViewDefinition& def = view_->definition;
  if (!IsConnector(def.kind)) {
    bool vertex_predicate =
        def.has_predicate() &&
        (def.kind == ViewKind::kVertexInclusionSummarizer ||
         def.kind == ViewKind::kVertexRemovalSummarizer);
    for (VertexId v = vertex_watermark_;
         v < static_cast<VertexId>(base_->NumVertices()); ++v) {
      if (!keep_vertex_type_[base_->VertexType(v)]) continue;
      if (vertex_predicate &&
          !EvalPredicate(base_->VertexProperty(v, def.predicate_property),
                         def.predicate_op, def.predicate_value)) {
        continue;
      }
      ViewVertexFor(v, &total);
    }
  }
  vertex_watermark_ = static_cast<VertexId>(base_->NumVertices());
  for (EdgeId e = watermark_; e < static_cast<EdgeId>(base_->NumEdges());
       ++e) {
    KASKADE_ASSIGN_OR_RETURN(MaintenanceStats stats, OnEdgeAdded(e));
    total.paths_added += stats.paths_added;
    total.edges_added += stats.edges_added;
    total.edges_updated += stats.edges_updated;
    total.vertices_added += stats.vertices_added;
  }
  return total;
}

}  // namespace kaskade::core
