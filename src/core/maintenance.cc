#include "core/maintenance.h"

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

namespace kaskade::core {

using graph::EdgeId;
using graph::EdgeRecord;
using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;

/// \brief Which base edges one maintenance step may traverse.
///
/// Both directions of the delta share one rule set: only edges below an
/// exclusive id bound participate (insertion of edge e uses bound e+1 so
/// later insertions contribute their own paths; removal uses the
/// insertion watermark so pending inserts stay invisible), and a batch
/// of removals additionally exposes the not-yet-processed removals of
/// the same batch through side adjacency lists — the base graph has
/// already unlinked them, but the *view* still counts their paths.
struct BatchRemovalScope {
  const PropertyGraph* base;
  /// Exclusive edge-id bound; edges at or above it are invisible.
  EdgeId id_bound;
  std::unordered_map<VertexId, std::vector<EdgeId>> extra_out;
  std::unordered_map<VertexId, std::vector<EdgeId>> extra_in;
  /// The subset of extra edges currently visible (later batch entries).
  std::unordered_set<EdgeId> visible_extra;

  BatchRemovalScope(const PropertyGraph* base_graph, EdgeId bound)
      : base(base_graph), id_bound(bound) {}

  /// Registers a removed-but-not-yet-processed batch edge as visible.
  void AddPending(EdgeId e) {
    const EdgeRecord& rec = base->Edge(e);
    extra_out[rec.source].push_back(e);
    extra_in[rec.target].push_back(e);
    visible_extra.insert(e);
  }

  /// Hides a batch edge once its own removal is being processed.
  void Hide(EdgeId e) { visible_extra.erase(e); }

  template <typename Fn>
  void ForEachOut(VertexId v, Fn&& fn) const {
    for (EdgeId e : base->OutEdges(v)) {
      if (e < id_bound) fn(e);
    }
    auto it = extra_out.find(v);
    if (it == extra_out.end()) return;
    for (EdgeId e : it->second) {
      if (visible_extra.count(e) != 0) fn(e);
    }
  }

  template <typename Fn>
  void ForEachIn(VertexId v, Fn&& fn) const {
    for (EdgeId e : base->InEdges(v)) {
      if (e < id_bound) fn(e);
    }
    auto it = extra_in.find(v);
    if (it == extra_in.end()) return;
    for (EdgeId e : it->second) {
      if (visible_extra.count(e) != 0) fn(e);
    }
  }
};

namespace {

/// \brief Open-addressed (src, dst) -> count map keyed on one packed
/// 64-bit vertex pair, iterated in first-insertion order (the `RowSet`
/// idiom from `query/executor.cc`). This sits on the hot path of every
/// incremental connector maintenance call — one lookup per enumerated
/// k-path — where the `std::map` it replaces paid a node allocation and
/// a pointer chase per path.
class PairCountMap {
 public:
  struct Entry {
    uint64_t key = 0;
    uint64_t count = 0;
    VertexId src() const { return static_cast<VertexId>(key >> 32); }
    VertexId dst() const { return static_cast<VertexId>(key & 0xffffffffu); }
  };

  void Increment(VertexId src, VertexId dst, uint64_t amount = 1) {
    const uint64_t key =
        (static_cast<uint64_t>(src) << 32) | static_cast<uint64_t>(dst);
    if ((entries_.size() + 1) * 10 >= slots_.size() * 7) Grow();
    const size_t mask = slots_.size() - 1;
    size_t i = Hash(key) & mask;
    while (slots_[i] != 0) {
      Entry& entry = entries_[slots_[i] - 1];
      if (entry.key == key) {
        entry.count += amount;
        return;
      }
      i = (i + 1) & mask;
    }
    entries_.push_back(Entry{key, amount});
    slots_[i] = entries_.size();  // entry index + 1; 0 marks an empty slot
  }

  /// Distinct (src, dst) pairs in first-insertion order (deterministic
  /// for a given enumeration; consumers' upsert/decrement results are
  /// order-invariant anyway).
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  static uint64_t Hash(uint64_t x) {
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    x *= 0x100000001b3ULL;
    return x ^ (x >> 32);
  }

  void Grow() {
    const size_t capacity = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<uint64_t> bigger(capacity, 0);
    const size_t mask = capacity - 1;
    for (size_t r = 0; r < entries_.size(); ++r) {
      size_t i = Hash(entries_[r].key) & mask;
      while (bigger[i] != 0) i = (i + 1) & mask;
      bigger[i] = r + 1;
    }
    slots_ = std::move(bigger);
  }

  std::vector<Entry> entries_;
  std::vector<uint64_t> slots_;
};

/// Counts, per (path start, path end) pair, the k-paths that pass
/// through the edge described by `rec`, using only edges visible in
/// `scope`. Mirrors the materializer's simple-path semantics, including
/// contracted closed paths (t == s). Every such path decomposes as:
/// s --(i edges)--> u --rec--> v --(k-1-i edges)--> t, 0 <= i <= k-1.
PairCountMap CountPathsThroughEdge(
    const PropertyGraph& base, const BatchRemovalScope& scope,
    const EdgeRecord& rec, int k, graph::VertexTypeId source_type,
    graph::VertexTypeId target_type) {
  const VertexId u = rec.source;
  const VertexId v = rec.target;
  PairCountMap pairs;

  // A self-loop can appear in a simple path only as the *entire* path
  // (k == 1, the contracted closed path v -> v, handled by the i == 0
  // split below). For k > 1 the backward/forward decomposition would
  // treat u and v as distinct path slots and count walks that visit
  // the vertex twice — walks the from-scratch contraction (simple-path
  // semantics, see CollectEndpoints in graph/contraction.cc) never
  // emits. Subtracting such phantom pairs on removal underflows
  // connector multiplicities that were never incremented.
  if (u == v && k > 1) return pairs;

  std::vector<std::vector<VertexId>> backward_paths;  // [u .. s]
  std::vector<VertexId> current{u};
  // Set per split: when the edge is the *last* edge of the path
  // (forward_steps == 0), a backward extension may terminate at v itself,
  // forming the closed path v -> ... -> u -> v.
  bool closed_start_allowed = false;
  std::function<void(VertexId, int)> extend_back = [&](VertexId w, int left) {
    if (left == 0) {
      backward_paths.push_back(current);
      return;
    }
    scope.ForEachIn(w, [&](EdgeId be) {
      VertexId prev = base.Edge(be).source;
      if (prev == v) {
        // v is already on the path; allowed only as the closed-path
        // start s == v, reached at the final backward step.
        if (closed_start_allowed && left == 1 &&
            (source_type == graph::kInvalidTypeId ||
             base.VertexType(v) == source_type) &&
            (target_type == graph::kInvalidTypeId ||
             base.VertexType(v) == target_type)) {
          pairs.Increment(v, v);
        }
        return;
      }
      if (std::find(current.begin(), current.end(), prev) != current.end()) {
        return;  // must stay simple
      }
      current.push_back(prev);
      extend_back(prev, left - 1);
      current.pop_back();
    });
  };

  for (int i = 0; i <= k - 1; ++i) {
    backward_paths.clear();
    current.assign(1, u);
    const int forward_steps = k - 1 - i;
    closed_start_allowed = forward_steps == 0;
    extend_back(u, i);
    for (const std::vector<VertexId>& back : backward_paths) {
      const VertexId s = back.back();  // path start
      if (source_type != graph::kInvalidTypeId &&
          base.VertexType(s) != source_type) {
        continue;
      }
      // Forward extension from v, avoiding every vertex of the backward
      // half and of the forward prefix; the start s is allowed only as
      // the final vertex (closed path).
      std::vector<VertexId> forward{v};
      std::function<void(VertexId, int)> extend_fwd = [&](VertexId w,
                                                          int left) {
        if (left == 0) {
          const VertexId t = w;
          if (target_type == graph::kInvalidTypeId ||
              base.VertexType(t) == target_type) {
            pairs.Increment(s, t);
          }
          return;
        }
        scope.ForEachOut(w, [&](EdgeId fe) {
          VertexId next = base.Edge(fe).target;
          bool in_back =
              std::find(back.begin(), back.end(), next) != back.end();
          bool in_fwd = std::find(forward.begin(), forward.end(), next) !=
                        forward.end();
          if (in_fwd) return;
          if (in_back) {
            // Allowed only when it closes the full path at its very end.
            if (next == s && left == 1) {
              if (target_type == graph::kInvalidTypeId ||
                  base.VertexType(s) == target_type) {
                pairs.Increment(s, s);
              }
            }
            return;
          }
          forward.push_back(next);
          extend_fwd(next, left - 1);
          forward.pop_back();
        });
      };
      if (forward_steps == 0) {
        // v itself is the endpoint.
        if (target_type == graph::kInvalidTypeId ||
            base.VertexType(v) == target_type) {
          pairs.Increment(s, v);
        }
      } else {
        extend_fwd(v, forward_steps);
      }
    }
  }
  return pairs;
}

}  // namespace

bool ViewMaintainer::SupportsKind(ViewKind kind) {
  return kind == ViewKind::kKHopConnector ||
         kind == ViewKind::kVertexInclusionSummarizer ||
         kind == ViewKind::kVertexRemovalSummarizer ||
         kind == ViewKind::kEdgeInclusionSummarizer ||
         kind == ViewKind::kEdgeRemovalSummarizer;
}

ViewMaintainer::ViewMaintainer(const PropertyGraph* base,
                               MaterializedView* view)
    : base_(base), view_(view) {
  const ViewDefinition& def = view_->definition;
  const PropertyGraph& vg = view_->graph;
  // Reverse vertex mapping (live view vertices only; a rebound view may
  // carry tombstones from earlier maintenance).
  for (VertexId v = 0; v < vg.NumVertices(); ++v) {
    if (!vg.IsVertexLive(v)) continue;
    base_to_view_.emplace(view_->view_to_base[v], v);
  }
  if (IsConnector(def.kind)) {
    connector_type_ = vg.schema().FindEdgeType(def.EdgeName());
    source_type_ = base_->schema().FindVertexType(def.source_type);
    target_type_ = base_->schema().FindVertexType(def.target_type);
    for (EdgeId e = 0; e < vg.NumEdges(); ++e) {
      if (!vg.IsEdgeLive(e)) continue;
      const EdgeRecord& rec = vg.Edge(e);
      connector_edges_.emplace(std::make_pair(rec.source, rec.target), e);
    }
  } else {
    // Filter summarizers: precompute keep masks (mirrors the
    // materializer's logic) and index view edges by base lineage.
    for (EdgeId e = 0; e < vg.NumEdges(); ++e) {
      if (!vg.IsEdgeLive(e)) continue;
      PropertyValue orig = vg.EdgeProperty(e, "orig_eid");
      if (orig.is_int()) {
        summarizer_edges_.emplace(static_cast<EdgeId>(orig.as_int()), e);
      }
    }
    const graph::GraphSchema& schema = base_->schema();
    keep_vertex_type_.assign(schema.num_vertex_types(), true);
    keep_edge_type_.assign(schema.num_edge_types(), true);
    auto in_list = [&](const std::string& name) {
      return std::find(def.type_list.begin(), def.type_list.end(), name) !=
             def.type_list.end();
    };
    switch (def.kind) {
      case ViewKind::kVertexInclusionSummarizer:
        for (size_t t = 0; t < schema.num_vertex_types(); ++t) {
          keep_vertex_type_[t] =
              in_list(schema.vertex_type_name(static_cast<uint32_t>(t)));
        }
        break;
      case ViewKind::kVertexRemovalSummarizer:
        for (size_t t = 0; t < schema.num_vertex_types(); ++t) {
          keep_vertex_type_[t] =
              !in_list(schema.vertex_type_name(static_cast<uint32_t>(t)));
        }
        break;
      case ViewKind::kEdgeInclusionSummarizer:
        for (size_t t = 0; t < schema.num_edge_types(); ++t) {
          keep_edge_type_[t] =
              in_list(schema.edge_type(static_cast<uint32_t>(t)).name);
        }
        break;
      case ViewKind::kEdgeRemovalSummarizer:
        for (size_t t = 0; t < schema.num_edge_types(); ++t) {
          keep_edge_type_[t] =
              !in_list(schema.edge_type(static_cast<uint32_t>(t)).name);
        }
        break;
      default:
        break;
    }
    // Edges only survive when both endpoint types survive.
    for (size_t t = 0; t < schema.num_edge_types(); ++t) {
      const graph::EdgeTypeDecl& decl =
          schema.edge_type(static_cast<uint32_t>(t));
      if (!keep_vertex_type_[decl.source_type] ||
          !keep_vertex_type_[decl.target_type]) {
        keep_edge_type_[t] = false;
      }
    }
  }
  watermark_ = static_cast<EdgeId>(base_->NumEdges());
  vertex_watermark_ = static_cast<VertexId>(base_->NumVertices());
  base_removals_seen_ = base_->num_removed_edges();
  base_vertex_removals_seen_ = base_->num_removed_vertices();
}

ViewMaintainer::BasePin ViewMaintainer::PinOf(const PropertyGraph& base) {
  return BasePin{static_cast<EdgeId>(base.NumEdges()),
                 static_cast<VertexId>(base.NumVertices()),
                 base.num_removed_edges(), base.num_removed_vertices()};
}

ViewMaintainer::ViewMaintainer(const PropertyGraph* base,
                               MaterializedView* view, const BasePin& pin)
    : ViewMaintainer(base, view) {
  // The view reflects the pinned base position, not the current one:
  // rewind the watermarks so the replay covers everything after the pin.
  watermark_ = pin.num_edges;
  vertex_watermark_ = pin.num_vertices;
  base_removals_seen_ = pin.removed_edges;
  base_vertex_removals_seen_ = pin.removed_vertices;
}

VertexId ViewMaintainer::ViewVertexFor(VertexId base_vertex,
                                       MaintenanceStats* stats) {
  auto it = base_to_view_.find(base_vertex);
  if (it != base_to_view_.end()) return it->second;
  PropertyGraph& vg = view_->graph;
  const std::string& type_name =
      base_->schema().vertex_type_name(base_->VertexType(base_vertex));
  graph::VertexTypeId view_type = vg.schema().FindVertexType(type_name);
  graph::PropertyMap props = base_->VertexProperties(base_vertex);
  props.Set("orig_id", PropertyValue(static_cast<int64_t>(base_vertex)));
  VertexId vid = vg.AddVertexOfType(view_type, std::move(props));
  base_to_view_.emplace(base_vertex, vid);
  view_->view_to_base.push_back(base_vertex);
  ++stats->vertices_added;
  return vid;
}

Status ViewMaintainer::UpsertConnectorEdge(VertexId base_src,
                                           VertexId base_dst, uint64_t paths,
                                           MaintenanceStats* stats) {
  PropertyGraph& vg = view_->graph;
  VertexId src = ViewVertexFor(base_src, stats);
  VertexId dst = ViewVertexFor(base_dst, stats);
  auto key = std::make_pair(src, dst);
  auto it = connector_edges_.find(key);
  if (it != connector_edges_.end()) {
    int64_t current = vg.EdgeProperty(it->second, "paths").as_int();
    KASKADE_RETURN_IF_ERROR(vg.SetEdgeProperty(
        it->second, "paths",
        PropertyValue(current + static_cast<int64_t>(paths))));
    ++stats->edges_updated;
    return Status::OK();
  }
  graph::PropertyMap props;
  props.Set("paths", PropertyValue(static_cast<int64_t>(paths)));
  KASKADE_ASSIGN_OR_RETURN(
      EdgeId e, vg.AddEdgeOfType(src, dst, connector_type_, std::move(props)));
  connector_edges_.emplace(key, e);
  ++stats->edges_added;
  return Status::OK();
}

Status ViewMaintainer::DecrementConnectorEdge(VertexId base_src,
                                              VertexId base_dst,
                                              uint64_t paths,
                                              MaintenanceStats* stats) {
  PropertyGraph& vg = view_->graph;
  auto src_it = base_to_view_.find(base_src);
  auto dst_it = base_to_view_.find(base_dst);
  if (src_it == base_to_view_.end() || dst_it == base_to_view_.end()) {
    return Status::Internal("view lost an endpoint of a maintained edge");
  }
  auto it = connector_edges_.find(
      std::make_pair(src_it->second, dst_it->second));
  if (it == connector_edges_.end()) {
    return Status::Internal("view lost a maintained connector edge");
  }
  int64_t current = vg.EdgeProperty(it->second, "paths").as_int();
  if (current < static_cast<int64_t>(paths)) {
    return Status::Internal("connector path multiplicity underflow");
  }
  stats->paths_removed += paths;
  if (current == static_cast<int64_t>(paths)) {
    KASKADE_RETURN_IF_ERROR(vg.RemoveEdge(it->second));
    if (removed_sink_ != nullptr) removed_sink_->push_back(it->second);
    connector_edges_.erase(it);
    ++stats->edges_removed;
    MaybeCollectViewVertex(base_src, stats);
    MaybeCollectViewVertex(base_dst, stats);
    return Status::OK();
  }
  KASKADE_RETURN_IF_ERROR(vg.SetEdgeProperty(
      it->second, "paths",
      PropertyValue(current - static_cast<int64_t>(paths))));
  ++stats->edges_updated;
  return Status::OK();
}

void ViewMaintainer::MaybeCollectViewVertex(VertexId base_vertex,
                                            MaintenanceStats* stats) {
  auto it = base_to_view_.find(base_vertex);
  if (it == base_to_view_.end()) return;
  PropertyGraph& vg = view_->graph;
  VertexId view_vertex = it->second;
  if (vg.OutDegree(view_vertex) != 0 || vg.InDegree(view_vertex) != 0) return;
  // From-scratch contraction only emits path endpoints, so an isolated
  // view vertex must go (its id is tombstoned; view_to_base keeps the
  // slot so ids stay aligned).
  if (vg.RemoveVertex(view_vertex).ok()) {
    base_to_view_.erase(it);
    ++stats->vertices_removed;
  }
}

Result<MaintenanceStats> ViewMaintainer::MaintainConnector(EdgeId e) {
  MaintenanceStats stats;
  // Only edges inserted up to and including e may participate: paths
  // that use a *later* insertion are that insertion's delta (prevents
  // double counting during batch catch-up).
  BatchRemovalScope scope(base_, e + 1);
  PairCountMap new_pairs =
      CountPathsThroughEdge(*base_, scope, base_->Edge(e),
                            view_->definition.k, source_type_, target_type_);
  for (const PairCountMap::Entry& entry : new_pairs.entries()) {
    stats.paths_added += entry.count;
    KASKADE_RETURN_IF_ERROR(
        UpsertConnectorEdge(entry.src(), entry.dst(), entry.count, &stats));
  }
  return stats;
}

Result<MaintenanceStats> ViewMaintainer::RemoveFromConnector(
    EdgeId e, const BatchRemovalScope* batch) {
  MaintenanceStats stats;
  // Pending inserts (id >= watermark) are invisible: the view never
  // counted their paths, so they must not be subtracted either.
  BatchRemovalScope single(base_, watermark_);
  const BatchRemovalScope& scope = batch != nullptr ? *batch : single;
  PairCountMap dead_pairs =
      CountPathsThroughEdge(*base_, scope, base_->Edge(e),
                            view_->definition.k, source_type_, target_type_);
  for (const PairCountMap::Entry& entry : dead_pairs.entries()) {
    KASKADE_RETURN_IF_ERROR(
        DecrementConnectorEdge(entry.src(), entry.dst(), entry.count, &stats));
  }
  return stats;
}

Result<MaintenanceStats> ViewMaintainer::MaintainFilterSummarizer(EdgeId e) {
  MaintenanceStats stats;
  const ViewDefinition& def = view_->definition;
  const EdgeRecord& rec = base_->Edge(e);
  if (!keep_edge_type_[rec.type]) return stats;
  if (def.has_predicate()) {
    // Mirror the materializer's footnote-5 semantics.
    bool vertex_filter = def.kind == ViewKind::kVertexInclusionSummarizer ||
                         def.kind == ViewKind::kVertexRemovalSummarizer;
    if (vertex_filter) {
      for (VertexId endpoint : {rec.source, rec.target}) {
        if (!EvalPredicate(
                base_->VertexProperty(endpoint, def.predicate_property),
                def.predicate_op, def.predicate_value)) {
          return stats;
        }
      }
    } else if (!EvalPredicate(base_->EdgeProperty(e, def.predicate_property),
                              def.predicate_op, def.predicate_value)) {
      return stats;
    }
  }
  PropertyGraph& vg = view_->graph;
  VertexId src = ViewVertexFor(rec.source, &stats);
  VertexId dst = ViewVertexFor(rec.target, &stats);
  graph::EdgeTypeId et =
      vg.schema().FindEdgeType(base_->schema().edge_type(rec.type).name);
  if (et == graph::kInvalidTypeId) {
    return Status::Internal("summarizer view schema lost an edge type");
  }
  graph::PropertyMap props = base_->EdgeProperties(e);
  props.Set("orig_eid", PropertyValue(static_cast<int64_t>(e)));
  KASKADE_ASSIGN_OR_RETURN(
      EdgeId view_edge, vg.AddEdgeOfType(src, dst, et, std::move(props)));
  summarizer_edges_.emplace(e, view_edge);
  ++stats.edges_added;
  return stats;
}

Result<MaintenanceStats> ViewMaintainer::RemoveFromFilterSummarizer(
    EdgeId e) {
  MaintenanceStats stats;
  auto it = summarizer_edges_.find(e);
  if (it == summarizer_edges_.end()) return stats;  // edge was filtered out
  KASKADE_RETURN_IF_ERROR(view_->graph.RemoveEdge(it->second));
  if (removed_sink_ != nullptr) removed_sink_->push_back(it->second);
  summarizer_edges_.erase(it);
  ++stats.edges_removed;
  // Summarizer vertices are kept by type/predicate, not by incidence —
  // a from-scratch materialization keeps them too, so no collection.
  return stats;
}

Result<MaintenanceStats> ViewMaintainer::OnEdgeAdded(EdgeId e) {
  if (e >= base_->NumEdges()) {
    return Status::OutOfRange("edge id not present in base graph");
  }
  if (e < watermark_) {
    return Status::InvalidArgument(
        "edge was already reflected in the view (ids must be reported "
        "once, in order)");
  }
  watermark_ = e + 1;
  if (!base_->IsEdgeLive(e)) {
    // Inserted and removed before the view ever saw it: net zero.
    return MaintenanceStats{};
  }
  const ViewDefinition& def = view_->definition;
  if (def.kind == ViewKind::kKHopConnector) return MaintainConnector(e);
  if (def.kind == ViewKind::kVertexInclusionSummarizer ||
      def.kind == ViewKind::kVertexRemovalSummarizer ||
      def.kind == ViewKind::kEdgeInclusionSummarizer ||
      def.kind == ViewKind::kEdgeRemovalSummarizer) {
    return MaintainFilterSummarizer(e);
  }
  return Status::Unimplemented(
      "incremental maintenance supports k-hop connectors and filter "
      "summarizers; re-materialize other view kinds");
}

Result<MaintenanceStats> ViewMaintainer::OnEdgeRemoved(EdgeId e) {
  if (e >= base_->NumEdges()) {
    return Status::OutOfRange("edge id not present in base graph");
  }
  if (base_->IsEdgeLive(e)) {
    return Status::InvalidArgument(
        "remove the edge from the base graph before reporting it");
  }
  const ViewDefinition& def = view_->definition;
  if (!SupportsKind(def.kind)) {
    return Status::Unimplemented(
        "incremental maintenance supports k-hop connectors and filter "
        "summarizers; re-materialize other view kinds");
  }
  if (base_->num_removed_edges() != base_removals_seen_ + 1) {
    // More than one unreported removal: paths through the other dead
    // edges would be silently missed. Use ApplyDelta for batches.
    return Status::FailedPrecondition(
        "multiple base removals are pending; report them as one "
        "GraphDelta via ApplyDelta (single-edge reporting must follow "
        "each removal immediately)");
  }
  ++base_removals_seen_;
  if (e >= watermark_) {
    // The insertion was never reflected; CatchUp will skip the tombstone.
    return MaintenanceStats{};
  }
  if (def.kind == ViewKind::kKHopConnector) {
    return RemoveFromConnector(e, nullptr);
  }
  return RemoveFromFilterSummarizer(e);
}

Result<MaintenanceStats> ViewMaintainer::ApplyDelta(
    const graph::GraphDelta& delta) {
  const ViewDefinition& def = view_->definition;
  if (!SupportsKind(def.kind)) {
    return Status::Unimplemented(
        "incremental maintenance supports k-hop connectors and filter "
        "summarizers; re-materialize other view kinds");
  }
  if (base_->num_removed_edges() !=
      base_removals_seen_ + delta.edge_removals.size()) {
    return Status::FailedPrecondition(
        "the delta's removal list does not match the base graph's "
        "removal count; apply exactly this delta to the base first and "
        "report every batch");
  }
  MaintenanceStats total;
  if (!delta.edge_removals.empty()) {
    if (def.kind == ViewKind::kKHopConnector) {
      // Removal r_i is accounted on the state where r_1..r_i are gone
      // but r_{i+1}.. are still present: every path through multiple
      // removed edges is subtracted exactly once.
      BatchRemovalScope scope(base_, watermark_);
      for (EdgeId e : delta.edge_removals) {
        if (e < watermark_) scope.AddPending(e);
      }
      for (EdgeId e : delta.edge_removals) {
        scope.Hide(e);
        ++base_removals_seen_;
        if (e >= watermark_) continue;
        KASKADE_ASSIGN_OR_RETURN(MaintenanceStats stats,
                                 RemoveFromConnector(e, &scope));
        total += stats;
      }
    } else {
      for (EdgeId e : delta.edge_removals) {
        ++base_removals_seen_;
        if (e >= watermark_) continue;
        KASKADE_ASSIGN_OR_RETURN(MaintenanceStats stats,
                                 RemoveFromFilterSummarizer(e));
        total += stats;
      }
    }
  }
  KASKADE_ASSIGN_OR_RETURN(MaintenanceStats inserted, CatchUp());
  total += inserted;
  return total;
}

Result<MaintenanceStats> ViewMaintainer::CatchUp() {
  if (base_removals_seen_ != base_->num_removed_edges()) {
    return Status::FailedPrecondition(
        "base graph edges were removed without notifying the maintainer; "
        "report removals via OnEdgeRemoved/ApplyDelta or re-materialize "
        "the view");
  }
  if (base_->num_removed_vertices() != base_vertex_removals_seen_) {
    // Vertices can only be removed out of band (GraphDelta has no
    // vertex removals); summarizer views would keep serving them.
    return Status::FailedPrecondition(
        "base graph vertices were removed behind the maintainer's back; "
        "re-materialize the view");
  }
  MaintenanceStats total;
  // Vertices first (summarizers copy kept vertices even when isolated).
  const ViewDefinition& def = view_->definition;
  if (!IsConnector(def.kind)) {
    bool vertex_predicate =
        def.has_predicate() &&
        (def.kind == ViewKind::kVertexInclusionSummarizer ||
         def.kind == ViewKind::kVertexRemovalSummarizer);
    for (VertexId v = vertex_watermark_;
         v < static_cast<VertexId>(base_->NumVertices()); ++v) {
      if (!base_->IsVertexLive(v)) continue;
      if (!keep_vertex_type_[base_->VertexType(v)]) continue;
      if (vertex_predicate &&
          !EvalPredicate(base_->VertexProperty(v, def.predicate_property),
                         def.predicate_op, def.predicate_value)) {
        continue;
      }
      ViewVertexFor(v, &total);
    }
  }
  vertex_watermark_ = static_cast<VertexId>(base_->NumVertices());
  for (EdgeId e = watermark_; e < static_cast<EdgeId>(base_->NumEdges());
       ++e) {
    KASKADE_ASSIGN_OR_RETURN(MaintenanceStats stats, OnEdgeAdded(e));
    total += stats;
  }
  return total;
}

}  // namespace kaskade::core
