/// \file advisor.h
/// \brief `Advisor`: online view advice from the observed workload.
///
/// The paper's workload analyzer (§V-B) is a one-shot, offline call: you
/// hand it the workload, it selects and materializes views. The advisor
/// turns the same enumerate → score → knapsack pipeline (`ViewSelector`)
/// into an *online* loop: it consumes a `WorkloadSnapshot` from the
/// `WorkloadTracker` — what the engine actually executed, weighted by
/// frequency — and emits an `AdvicePlan` of view *creations and drops*
/// relative to what the catalog currently holds.
///
/// Two asymmetries versus the offline analyzer:
///
///  - **Drops.** Currently-materialized views re-enter the candidate set
///    even when no observed query enumerates them; a materialized view
///    with zero applicable observed queries is proposed for dropping
///    (its space buys nothing for this workload).
///  - **Hysteresis.** Materialized candidates carry a keep boost
///    (`SelectionContext::keep_boost`) in the knapsack, so a challenger
///    must beat an incumbent by a margin before the advisor proposes a
///    swap — on an unchanged workload two adjacent advice rounds are
///    identical and propose nothing.
///
/// The advisor only *plans*; `Engine::ApplyAdvice` carries the plan out
/// (drops immediately, creations on a background builder).

#ifndef KASKADE_CORE_ADVISOR_H_
#define KASKADE_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/catalog.h"
#include "core/view_selector.h"
#include "core/workload_tracker.h"

namespace kaskade::core {

/// \brief How an observed query's importance weight is derived (§V-B
/// offers both: "frequency or expected execution time").
enum class AdviceWeighting {
  /// Weight = execution count. Treats every query as equally expensive,
  /// so high-traffic cheap queries dominate selection.
  kFrequency,
  /// Weight = frequency x measured mean latency (i.e. the query's total
  /// measured execution time) — the tracker already records latencies,
  /// so a slow-but-rare analytical query can out-weigh a fast-but-
  /// frequent point lookup when its aggregate cost is larger.
  /// Observations with no recorded latency are imputed the workload's
  /// execution-weighted mean latency (same unit as everyone else); when
  /// no observation carries a latency at all, the round degrades to
  /// frequency weighting.
  kExpectedExecutionTime,
};

/// \brief Advisor configuration.
struct AdvisorOptions {
  /// The selection pipeline configuration (budget, enumerator, cost).
  SelectorOptions selector;
  /// Hysteresis boost for currently-materialized views (> 1 means an
  /// incumbent survives against marginally better challengers).
  double keep_boost = 1.25;
  /// Ignore observed queries executed fewer times than this (noise
  /// floor for one-off exploratory queries).
  uint64_t min_executions = 1;
  /// How observed queries are weighted when scoring candidate views.
  AdviceWeighting weighting = AdviceWeighting::kFrequency;
};

/// \brief One advice round: what to build, what to drop, and the scored
/// selection it came from.
struct AdvicePlan {
  /// Views the knapsack selected that are not materialized yet.
  std::vector<ViewDefinition> create;
  /// Names of materialized views with zero applicable observed queries.
  std::vector<std::string> drop;
  /// The underlying scored selection (includes incumbents).
  SelectionReport selection;
  /// Distinct observed queries that fed the round.
  size_t observed_queries = 0;
  /// Total executions across them.
  uint64_t observed_executions = 0;

  bool empty() const { return create.empty() && drop.empty(); }
};

/// \brief Online view advice over one base graph.
class Advisor {
 public:
  explicit Advisor(const graph::PropertyGraph* base,
                   AdvisorOptions options = {})
      : base_(base), options_(options) {}

  /// Advice from a tracker snapshot: each observed query becomes a
  /// workload entry weighted by its execution count (the paper's
  /// frequency weighting), so a query mix observed by the tracker
  /// reproduces the offline analyzer's selections for the same mix.
  /// Unparseable observations are skipped (they never executed
  /// successfully anyway).
  Result<AdvicePlan> Advise(const WorkloadSnapshot& workload,
                            const ViewCatalog& catalog) const;

  /// Advice from an explicit workload (the offline `AnalyzeWorkload`
  /// path re-expressed): same pipeline, caller-provided entries.
  Result<AdvicePlan> AdviseWorkload(const std::vector<WorkloadEntry>& workload,
                                    const ViewCatalog& catalog) const;

 private:
  const graph::PropertyGraph* base_;
  AdvisorOptions options_;
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_ADVISOR_H_
