/// \file catalog.h
/// \brief `ViewCatalog`: the thread-safe registry of materialized views
/// (the "view catalog" box of Fig. 2).
///
/// The catalog *owns* each materialized view together with its statistics
/// (used for cost-based plan choice) and its incremental maintainer
/// (where the view kind supports one). Entries live behind stable
/// `ViewHandle` ids and never move in memory — they are held by
/// `std::unique_ptr` — so maintainers and in-flight readers can hold
/// pointers into them without the pointer-stability gymnastics the old
/// monolithic facade needed (a `std::deque` that must never reallocate).
///
/// Every mutation — registering a view, refreshing views, dropping a
/// view, or an announced base-graph change — bumps a monotonic
/// *generation* counter. Consumers that cache anything derived from the
/// catalog (notably the `Planner`'s plan cache) key their entries by
/// generation, which makes invalidation implicit: a stale generation
/// simply never matches again.
///
/// Thread-safety: all methods are safe to call concurrently. Reads take a
/// shared lock; mutations take an exclusive lock. `CatalogEntry` pointers
/// returned by accessors stay valid until the entry is dropped, but the
/// *contents* they point to may only be read while the caller prevents
/// concurrent catalog mutations (the `Engine` enforces this with its own
/// reader/writer discipline). Note that with background builds the
/// engine itself is such a mutator: `Publish`/`AbortBuild` land
/// asynchronously, so external introspection (`Entries`/`Find`/`Get`
/// dereferences) while builds are pending must be gated — e.g. by
/// `Engine::WaitForBuilds()` — or externally synchronized against the
/// scheduling thread.

#ifndef KASKADE_CORE_CATALOG_H_
#define KASKADE_CORE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/fault.h"
#include "core/maintenance.h"
#include "core/materializer.h"
#include "core/segment_store.h"
#include "core/view_definition.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "graph/property_graph.h"
#include "graph/stats.h"

namespace kaskade::core {

/// \brief Stable identifier of a catalog entry. Never reused, never
/// invalidated by other entries coming or going.
using ViewHandle = uint64_t;

inline constexpr ViewHandle kInvalidViewHandle = 0;

/// \brief Lifecycle of a catalog entry.
///
/// `kReady` views are the only ones the planner considers, the only
/// ones maintenance touches, and the only ones queries ever run on.
/// `kBuilding` entries are placeholders registered by `BeginBuild`:
/// they reserve the name (so a duplicate build cannot start) while the
/// actual materialization runs on a background worker *outside* the
/// engine's writer lock; `Publish` swaps the built view in and flips
/// the entry to `kReady` in one short writer critical section.
/// `kDropping` is the transient exit arc of the lifecycle: `Remove`
/// sets it under the writer lock immediately before erasing the entry,
/// so no concurrent reader can observe it — it exists to make the
/// lifecycle explicit (an entry leaves through exactly one arc), not as
/// an observable phase. `kQuarantined` entries are views taken out of
/// service after a failed build or a maintenance pass that could not
/// keep them exact: the name stays reserved (so monitors can see *why*
/// via `CatalogEntry::health` and a later advice round can rebuild it
/// through `BeginBuild`), but the planner never considers the entry, so
/// queries transparently fall back to the base graph or another view —
/// degraded cost, never degraded correctness.
enum class ViewState { kBuilding, kReady, kDropping, kQuarantined };

/// Human-readable state name ("building" / "ready" / "dropping" /
/// "quarantined").
const char* ViewStateName(ViewState state);

/// \brief A materialized view registered with the catalog, with the
/// statistics used for cost-based plan choice and the maintainer that
/// keeps it consistent with the base graph (null when the view kind only
/// supports re-materialization).
struct CatalogEntry {
  ViewHandle handle = kInvalidViewHandle;
  MaterializedView view;
  graph::GraphStats stats;
  std::unique_ptr<ViewMaintainer> maintainer;
  /// Live view counts when `stats` was last computed. On the per-delta
  /// path statistics may drift ~10% before the O(V log V) recompute
  /// runs again (plan costing tolerates that); `RefreshAll` always
  /// recomputes changed views exactly.
  size_t stats_live_vertices = 0;
  size_t stats_live_edges = 0;
  /// Lifecycle state; only `kReady` entries are planner-visible. For a
  /// `kBuilding` placeholder `view.graph` is empty and `maintainer` is
  /// null until `Publish`.
  ViewState state = ViewState::kReady;
  /// Why the entry is out of service: OK unless `state` is
  /// `kQuarantined`, in which case it holds the failure that forced the
  /// quarantine (build error, maintenance fault).
  Status health = Status::OK();

  std::string name() const { return view.definition.Name(); }
};

/// \brief How `ApplyBaseDelta` brought the catalog up to date.
struct DeltaMaintenanceReport {
  /// Aggregated over every incrementally maintained view.
  MaintenanceStats stats;
  size_t views_incremental = 0;
  size_t views_rematerialized = 0;
  /// Views whose maintenance failed in a way that could not be repaired
  /// by a rebuild: they were quarantined (taken out of planning) and the
  /// rest of the batch proceeded. The base graph and every other view
  /// stay exact.
  size_t views_quarantined = 0;
};

/// \brief Thread-safe registry owning all materialized views.
class ViewCatalog {
 public:
  /// Binds to the base graph the views are materialized from. The graph
  /// must outlive the catalog and must not move (maintainers hold
  /// pointers to it). `patch_options` tunes incremental CSR snapshot
  /// production (`max_dirty_fraction = 0` disables patching: every
  /// snapshot miss is a full rebuild). `shards >= 2` routes base-graph
  /// snapshot production through a per-shard `SegmentStore` pipeline
  /// (see segment_store.h); 1 keeps the single-slot path, byte-identical
  /// to previous behavior.
  explicit ViewCatalog(const graph::PropertyGraph* base,
                       graph::CsrPatchOptions patch_options = {},
                       size_t shards = 1)
      : base_(base),
        patch_options_(patch_options),
        effective_dirty_fraction_(patch_options.max_dirty_fraction),
        store_(shards >= 2 ? std::make_unique<SegmentStore>(base, shards)
                           : nullptr) {}

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// Materializes `definition` over the base graph and registers it
  /// ready. Attaches an incremental maintainer when the view kind
  /// supports one. Fails with AlreadyExists when a view of the same name
  /// is registered (in any state).
  Result<ViewHandle> Add(const ViewDefinition& definition);

  /// \name Non-blocking registration (background materialization).
  ///
  /// `BeginBuild` registers a `kBuilding` placeholder — reserving the
  /// name, returning the handle the builder will publish under — without
  /// materializing anything and *without* bumping the generation
  /// (nothing planner-visible changed). The builder materializes off the
  /// writer lock, then calls `Publish` to swap the finished view in,
  /// attach its maintainer, refresh statistics, flip the entry to
  /// `kReady`, and bump the generation — one short writer critical
  /// section regardless of how long the build took. `AbortBuild`
  /// discards the placeholder when the build fails.
  /// @{
  Result<ViewHandle> BeginBuild(const ViewDefinition& definition);
  Status Publish(ViewHandle handle, MaterializedView built);
  Status AbortBuild(ViewHandle handle);
  /// @}

  /// Takes the entry out of service after a failure that left it unable
  /// to serve exact results: flips it to `kQuarantined`, records
  /// `reason` in `CatalogEntry::health`, detaches its maintainer, drops
  /// its cached snapshot, and bumps the generation so cached plans that
  /// referenced the view stop matching. The name stays reserved;
  /// `BeginBuild`/`Add` with the same name reclaim the entry (rebuild),
  /// and `Remove` drops it. Accepts `kReady` and `kBuilding` entries;
  /// NotFound when the handle is not registered.
  Status Quarantine(ViewHandle handle, Status reason);

  /// Drops the view named `name` (marking it `kDropping` on the way
  /// out). Plans cached against older generations stop matching;
  /// in-flight readers of the entry must be excluded by the caller (the
  /// Engine's writer lock does this). Dropping a `kBuilding` entry is
  /// refused (abort the build instead); dropping a `kQuarantined` entry
  /// is allowed — that is how an operator retires a broken view.
  Status Remove(const std::string& name);

  /// Brings every `kReady` view up to date with the base graph:
  /// incrementally where a maintainer is attached, by re-materialization
  /// otherwise — including when the base graph saw removals the
  /// maintainer was never told about (stale views are rebuilt, never
  /// served). Refreshes per-view statistics. `kBuilding` placeholders
  /// are skipped — their builder catches up at publish time.
  Status RefreshAll();

  /// Routes one already-applied base-graph delta (coalesced; removals in
  /// application order) to every `kReady` view: incrementally via its
  /// maintainer when attached and the cost model predicts the
  /// incremental pass beats a from-scratch build, by re-materialization
  /// otherwise. `kBuilding` placeholders are skipped (the engine's
  /// pending-delta log replays the batch onto them at publish time).
  /// Refreshes per-view statistics and bumps the generation exactly once
  /// for the whole batch.
  ///
  /// The batch's *footprint* (removal ids + insert counts; never the
  /// insert payloads) is recorded on the base graph's snapshot delta
  /// trail, and each incrementally-maintained view's removed view edges
  /// on that view's trail, so the next `BaseSnapshot`/`SnapshotFor`
  /// patches the previous CSR snapshot forward in O(|delta|) instead of
  /// rebuilding in O(|V| + |E|). Rematerialized views fall off the
  /// patch path (their snapshot is rebuilt from scratch). Pass the
  /// footprint the engine already shares with its pending-delta log so
  /// the batch is materialized once; the single-argument overload
  /// captures a fresh one.
  Result<DeltaMaintenanceReport> ApplyBaseDelta(
      const graph::GraphDelta& delta, graph::DeltaFootprintPtr footprint);
  Result<DeltaMaintenanceReport> ApplyBaseDelta(const graph::GraphDelta& delta);

  /// Announces an out-of-band base-graph change (e.g. appended edges)
  /// so generation-keyed caches are invalidated before the next refresh.
  /// The base graph's snapshot trail cannot describe an arbitrary
  /// mutation, so the next `BaseSnapshot` is a full rebuild.
  void NoteBaseGraphChanged() {
    BumpGeneration();
    InvalidateSnapshot(kInvalidViewHandle);
  }

  /// Monotonic counter: strictly increases on every catalog mutation or
  /// announced base-graph change. Starts at 1.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Number of registered entries, in any state.
  size_t size() const;
  bool empty() const { return size() == 0; }
  /// Number of `kReady` (planner-visible) entries.
  size_t num_ready() const;
  /// Number of `kQuarantined` (out-of-service) entries.
  size_t num_quarantined() const;
  /// Total quarantine transitions since construction (monotonic — a
  /// reclaimed-and-requarantined view counts each time).
  size_t quarantine_events() const {
    return quarantine_events_.load(std::memory_order_relaxed);
  }

  /// Entry lookup; null when absent. Returns entries in any state — the
  /// planner must skip non-`kReady` ones. See class comment for pointer
  /// validity rules.
  const CatalogEntry* Find(const std::string& name) const;
  const CatalogEntry* Get(ViewHandle handle) const;

  /// Snapshot of all registered entries (any state), in registration
  /// order.
  std::vector<const CatalogEntry*> Entries() const;

  /// \name CSR topology snapshots for the query hot path.
  ///
  /// One frozen `CsrGraph` per materialized view *and* the base graph,
  /// built lazily on first request and cached keyed by
  /// `(handle, generation)`. Because every catalog mutation and every
  /// announced base-graph change bumps the generation, invalidation is
  /// implicit: after `ApplyBaseDelta` / `MutateBaseGraph` /
  /// `NoteBaseGraphChanged` the next request simply produces a fresh
  /// snapshot. The returned `shared_ptr` owns a self-contained copy of
  /// the topology, so a reader may keep using a snapshot even after it
  /// has been superseded.
  ///
  /// A generation miss does **not** imply an O(|V| + |E|) rebuild: each
  /// handle keeps its last published snapshot plus a bounded *delta
  /// trail* of what changed since (`ApplyBaseDelta` records it), and the
  /// next request patches the old snapshot forward in O(|delta|) via
  /// `CsrGraph::PatchedFrom`. The patch path falls back to a full
  /// rebuild when the trail was truncated or bypassed (out-of-band
  /// mutation, view rematerialization, generation moved without trail
  /// coverage) or when the dirty fraction exceeds
  /// `CsrPatchOptions::max_dirty_fraction`. Telemetry splits the two:
  /// `snapshot_builds() == snapshot_patches() + snapshot_full_builds()`.
  ///
  /// Callers must hold off concurrent mutation of the underlying graphs
  /// for the duration of the call (the Engine's reader lock does this);
  /// concurrent readers are safe. Builds happen outside the cache lock,
  /// so a miss never stalls hits on other handles; concurrent missers
  /// on the same handle may build duplicate (identical) snapshots, and
  /// the first to publish wins.
  /// @{

  /// Snapshot of the base graph.
  std::shared_ptr<const graph::CsrGraph> BaseSnapshot() const;

  /// Snapshot of the view `handle`'s graph; null when the handle is not
  /// registered.
  std::shared_ptr<const graph::CsrGraph> SnapshotFor(ViewHandle handle) const;

  /// \name Snapshot-cache telemetry (for tests and operations).
  /// Snapshots produced on a cache miss, by either path.
  size_t snapshot_builds() const {
    return snapshot_builds_.load(std::memory_order_relaxed);
  }
  size_t snapshot_hits() const {
    return snapshot_hits_.load(std::memory_order_relaxed);
  }
  /// Snapshots derived from the previous snapshot in O(|delta|).
  size_t snapshot_patches() const {
    return snapshot_patches_.load(std::memory_order_relaxed);
  }
  /// Snapshots built from scratch (first build, truncated trail,
  /// rematerialized view, or dirty-fraction fallback).
  size_t snapshot_full_builds() const {
    return snapshot_full_builds_.load(std::memory_order_relaxed);
  }
  /// @}

  const graph::CsrPatchOptions& patch_options() const {
    return patch_options_;
  }

  /// \name Segment-level patch telemetry.
  ///
  /// Totals over every snapshot production on either path (the
  /// single-slot `PatchedFrom` path and, when sharded, the
  /// `SegmentStore` refreshes): immutable CSR segments rebuilt vs
  /// shared by refcount with the previous generation, and the bytes
  /// the rebuilt ones cost. `patch_bytes_copied` growing with the
  /// delta size while `patch_segments_shared` tracks |V|/segment_size
  /// is the O(delta) patching claim, measurable in production.
  /// @{
  uint64_t patch_segments_copied() const {
    uint64_t v = patch_segments_copied_.load(std::memory_order_relaxed);
    if (store_ != nullptr) v += store_->segments_copied();
    return v;
  }
  uint64_t patch_segments_shared() const {
    uint64_t v = patch_segments_shared_.load(std::memory_order_relaxed);
    if (store_ != nullptr) v += store_->segments_shared();
    return v;
  }
  uint64_t patch_bytes_copied() const {
    uint64_t v = patch_bytes_copied_.load(std::memory_order_relaxed);
    if (store_ != nullptr) v += store_->bytes_copied();
    return v;
  }
  /// @}

  /// Configured shard count (1 = unsharded).
  size_t shards() const { return store_ != nullptr ? store_->shards() : 1; }

  /// Per-shard writer-lock acquisitions (empty when unsharded).
  std::vector<uint64_t> shard_writer_acquisitions() const {
    return store_ != nullptr ? store_->writer_acquisitions()
                             : std::vector<uint64_t>{};
  }

  /// The dirty-fraction threshold the patch path currently runs with.
  /// Starts at `patch_options().max_dirty_fraction` (the configured
  /// floor) and is auto-tuned upward — never below the floor, never
  /// above 0.95 — from observed patch cost: segments make the cost
  /// model sharp, so the tuner raises the threshold while patches keep
  /// copying well under the full segment set (a "dirty" patch is then
  /// still cheap — dirty segments rebuild through the same
  /// `BuildSegment` code a full rebuild would run, clean ones are
  /// free), and backs off toward the floor when patches approach
  /// full-rebuild cost.
  double effective_max_dirty_fraction() const {
    std::lock_guard<std::mutex> lock(tune_mu_);
    return effective_dirty_fraction_;
  }

  /// Installs the fault-injection hook for the sites the catalog owns
  /// (`kSnapshotBuild`, `kMaintainerApply`). The engine wires its
  /// `EngineOptions::fault_hooks` through here at construction; call
  /// before concurrent use begins.
  void SetFaultHook(FaultHook hook) { fault_hooks_.hook = std::move(hook); }

  /// Snapshot productions that failed via an injected `kSnapshotBuild`
  /// fault (each one degraded that query to the legacy backend).
  size_t snapshot_build_failures() const {
    return snapshot_build_failures_.load(std::memory_order_relaxed);
  }

  /// True when the base graph's snapshot slot would actually retain a
  /// delta footprint (a patchable snapshot exists). Lets `ApplyDelta`
  /// skip materializing the footprint during write-only phases where no
  /// log would keep it. Passing a null footprint to `ApplyBaseDelta`
  /// conservatively invalidates the base slot instead of recording.
  bool WantsBaseDeltaTrail() const;

 private:
  /// Snapshot state for one handle (kInvalidViewHandle = the base
  /// graph): the last published snapshot plus the delta trail that
  /// carries it forward to `head_generation`. Guarded by `snapshot_mu_`.
  ///
  /// Invariant while `patchable`: the handle's graph changed between
  /// `csr_generation` and `head_generation` only by (a) appending
  /// vertices/edges — discovered from id-space growth, no log needed —
  /// and (b) tombstoning exactly the edges recorded on the trail.
  /// Mutations the trail cannot describe (rematerialization, arbitrary
  /// `MutateBaseGraph`, maintenance failures) clear `patchable`, which
  /// makes the next snapshot request a full rebuild.
  struct SnapshotSlot {
    std::shared_ptr<const graph::CsrGraph> csr;
    uint64_t csr_generation = 0;
    bool patchable = false;
    uint64_t head_generation = 0;
    /// Removal batches recorded since `csr_generation` (bounded; see
    /// kMaxTrailBatches/kMaxTrailRemovals in catalog.cc).
    size_t trail_batches = 0;
    size_t trail_removals = 0;
    /// Base-graph slot: the applied batches' footprints, shared with
    /// the engine's pending-delta log (one allocation per batch,
    /// repo-wide; insert payloads are never pinned).
    std::vector<graph::DeltaFootprintPtr> base_trail;
    /// View slots: flattened removed view-edge ids (view inserts are
    /// discovered from id-space growth and need no log).
    std::vector<graph::EdgeId> view_removals;
  };

  std::shared_ptr<const graph::CsrGraph> SnapshotOf(
      ViewHandle handle, const graph::PropertyGraph& g) const;

  /// Bumps the generation and advances every patchable slot's trail
  /// head: a bump whose graph changes are recorded on (or irrelevant
  /// to) a slot's trail keeps that slot patchable across it.
  void BumpGeneration();

  /// Records one applied base batch on the base slot's trail (or cuts
  /// the trail when the batch alone exceeds the patch budget).
  void NoteBaseDelta(const graph::DeltaFootprintPtr& footprint);

  /// Records the view edges `handle`'s maintainer tombstoned for one
  /// batch on that view's trail.
  void NoteViewDelta(ViewHandle handle,
                     std::vector<graph::EdgeId> removed_view_edges);

  /// Marks `handle`'s graph as changed in a way the trail cannot
  /// describe: drops the cached snapshot and trail, forcing the next
  /// request onto the full-rebuild path.
  void InvalidateSnapshot(ViewHandle handle);

  /// Quarantine with `mu_` already held exclusively.
  void QuarantineLocked(CatalogEntry* entry, Status reason);

  /// Feeds one `PatchedFrom` outcome into the segment telemetry totals
  /// and the dirty-fraction auto-tuner.
  void ObservePatch(const graph::CsrPatchStats& stats) const;

  const graph::PropertyGraph* base_;
  graph::CsrPatchOptions patch_options_;
  mutable std::shared_mutex mu_;
  /// unique_ptr: entries are pointer-stable and individually droppable.
  std::vector<std::unique_ptr<CatalogEntry>> entries_;
  ViewHandle next_handle_ = 1;
  std::atomic<uint64_t> generation_{1};
  /// Snapshot cache. Guarded by its own mutex: snapshot builds happen on
  /// the reader path (under the Engine's shared lock), where `mu_` may
  /// be held shared by many threads at once.
  mutable std::mutex snapshot_mu_;
  mutable std::unordered_map<ViewHandle, SnapshotSlot> snapshots_;
  mutable std::atomic<size_t> snapshot_builds_{0};
  mutable std::atomic<size_t> snapshot_hits_{0};
  mutable std::atomic<size_t> snapshot_patches_{0};
  mutable std::atomic<size_t> snapshot_full_builds_{0};
  mutable std::atomic<size_t> snapshot_build_failures_{0};
  mutable std::atomic<uint64_t> patch_segments_copied_{0};
  mutable std::atomic<uint64_t> patch_segments_shared_{0};
  mutable std::atomic<uint64_t> patch_bytes_copied_{0};
  /// Auto-tuner state (see `effective_max_dirty_fraction`). Guarded by
  /// its own mutex: updated on the reader path after each patch.
  mutable std::mutex tune_mu_;
  mutable double effective_dirty_fraction_;
  /// EWMA of the per-patch copied-segment fraction, seeded pessimistic.
  mutable double copy_ratio_ewma_ = 1.0;
  /// Per-shard base-snapshot pipeline; null when `shards == 1`.
  std::unique_ptr<SegmentStore> store_;
  std::atomic<size_t> quarantine_events_{0};
  /// Fault sites owned by the catalog; no-op unless a hook is installed.
  FaultHooks fault_hooks_;
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_CATALOG_H_
