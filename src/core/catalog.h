/// \file catalog.h
/// \brief `ViewCatalog`: the thread-safe registry of materialized views
/// (the "view catalog" box of Fig. 2).
///
/// The catalog *owns* each materialized view together with its statistics
/// (used for cost-based plan choice) and its incremental maintainer
/// (where the view kind supports one). Entries live behind stable
/// `ViewHandle` ids and never move in memory — they are held by
/// `std::unique_ptr` — so maintainers and in-flight readers can hold
/// pointers into them without the pointer-stability gymnastics the old
/// monolithic facade needed (a `std::deque` that must never reallocate).
///
/// Every mutation — registering a view, refreshing views, dropping a
/// view, or an announced base-graph change — bumps a monotonic
/// *generation* counter. Consumers that cache anything derived from the
/// catalog (notably the `Planner`'s plan cache) key their entries by
/// generation, which makes invalidation implicit: a stale generation
/// simply never matches again.
///
/// Thread-safety: all methods are safe to call concurrently. Reads take a
/// shared lock; mutations take an exclusive lock. `CatalogEntry` pointers
/// returned by accessors stay valid until the entry is dropped, but the
/// *contents* they point to may only be read while the caller prevents
/// concurrent catalog mutations (the `Engine` enforces this with its own
/// reader/writer discipline).

#ifndef KASKADE_CORE_CATALOG_H_
#define KASKADE_CORE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/maintenance.h"
#include "core/materializer.h"
#include "core/view_definition.h"
#include "graph/delta.h"
#include "graph/property_graph.h"
#include "graph/stats.h"

namespace kaskade::core {

/// \brief Stable identifier of a catalog entry. Never reused, never
/// invalidated by other entries coming or going.
using ViewHandle = uint64_t;

inline constexpr ViewHandle kInvalidViewHandle = 0;

/// \brief A materialized view registered with the catalog, with the
/// statistics used for cost-based plan choice and the maintainer that
/// keeps it consistent with the base graph (null when the view kind only
/// supports re-materialization).
struct CatalogEntry {
  ViewHandle handle = kInvalidViewHandle;
  MaterializedView view;
  graph::GraphStats stats;
  std::unique_ptr<ViewMaintainer> maintainer;
  /// Live view counts when `stats` was last computed. On the per-delta
  /// path statistics may drift ~10% before the O(V log V) recompute
  /// runs again (plan costing tolerates that); `RefreshAll` always
  /// recomputes changed views exactly.
  size_t stats_live_vertices = 0;
  size_t stats_live_edges = 0;

  std::string name() const { return view.definition.Name(); }
};

/// \brief How `ApplyBaseDelta` brought the catalog up to date.
struct DeltaMaintenanceReport {
  /// Aggregated over every incrementally maintained view.
  MaintenanceStats stats;
  size_t views_incremental = 0;
  size_t views_rematerialized = 0;
};

/// \brief Thread-safe registry owning all materialized views.
class ViewCatalog {
 public:
  /// Binds to the base graph the views are materialized from. The graph
  /// must outlive the catalog and must not move (maintainers hold
  /// pointers to it).
  explicit ViewCatalog(const graph::PropertyGraph* base) : base_(base) {}

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// Materializes `definition` over the base graph and registers it.
  /// Attaches an incremental maintainer when the view kind supports one.
  /// Fails with AlreadyExists when a view of the same name is registered.
  Result<ViewHandle> Add(const ViewDefinition& definition);

  /// Drops the view named `name`. Plans cached against older generations
  /// stop matching; in-flight readers of the entry must be excluded by
  /// the caller (the Engine's writer lock does this).
  Status Remove(const std::string& name);

  /// Brings every registered view up to date with the base graph:
  /// incrementally where a maintainer is attached, by re-materialization
  /// otherwise — including when the base graph saw removals the
  /// maintainer was never told about (stale views are rebuilt, never
  /// served). Refreshes per-view statistics.
  Status RefreshAll();

  /// Routes one already-applied base-graph delta (coalesced; removals in
  /// application order) to every registered view: incrementally via its
  /// maintainer when attached and the cost model predicts the
  /// incremental pass beats a from-scratch build, by re-materialization
  /// otherwise. Refreshes per-view statistics and bumps the generation
  /// exactly once for the whole batch.
  Result<DeltaMaintenanceReport> ApplyBaseDelta(const graph::GraphDelta& delta);

  /// Announces an out-of-band base-graph change (e.g. appended edges)
  /// so generation-keyed caches are invalidated before the next refresh.
  void NoteBaseGraphChanged() { BumpGeneration(); }

  /// Monotonic counter: strictly increases on every catalog mutation or
  /// announced base-graph change. Starts at 1.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Entry lookup; null when absent. See class comment for pointer
  /// validity rules.
  const CatalogEntry* Find(const std::string& name) const;
  const CatalogEntry* Get(ViewHandle handle) const;

  /// Snapshot of all live entries, in registration order.
  std::vector<const CatalogEntry*> Entries() const;

 private:
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  const graph::PropertyGraph* base_;
  mutable std::shared_mutex mu_;
  /// unique_ptr: entries are pointer-stable and individually droppable.
  std::vector<std::unique_ptr<CatalogEntry>> entries_;
  ViewHandle next_handle_ = 1;
  std::atomic<uint64_t> generation_{1};
};

}  // namespace kaskade::core

#endif  // KASKADE_CORE_CATALOG_H_
