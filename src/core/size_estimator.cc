#include "core/size_estimator.h"

#include <algorithm>
#include <cmath>

namespace kaskade::core {

double ErdosRenyiPathEstimate(size_t n, size_t m, int k) {
  if (k <= 0 || n < static_cast<size_t>(k) + 1 || m == 0 || n < 2) return 0;
  // log C(n, k+1) = lgamma(n+1) - lgamma(k+2) - lgamma(n-k)
  double dn = static_cast<double>(n);
  double log_binom = std::lgamma(dn + 1) - std::lgamma(k + 2.0) -
                     std::lgamma(dn - k);
  // p = m / C(n,2) = 2m / (n (n-1))
  double log_p = std::log(2.0 * static_cast<double>(m)) - std::log(dn) -
                 std::log(dn - 1);
  double log_e = log_binom + k * log_p;
  if (log_e > 700) return std::numeric_limits<double>::infinity();
  return std::exp(log_e);
}

double HomogeneousPathEstimate(const graph::GraphStats& stats, int k,
                               double alpha) {
  if (k <= 0) return 0;
  double deg = stats.overall().Percentile(alpha);
  return static_cast<double>(stats.num_vertices()) * std::pow(deg, k);
}

double HeterogeneousPathEstimate(const graph::PropertyGraph& graph,
                                 const graph::GraphStats& stats, int k,
                                 double alpha) {
  if (k <= 0) return 0;
  double total = 0;
  const graph::GraphSchema& schema = graph.schema();
  for (size_t t = 0; t < schema.num_vertex_types(); ++t) {
    graph::VertexTypeId type = static_cast<graph::VertexTypeId>(t);
    // Only types that are the domain of at least one edge type can source
    // paths (Eq. 3's T_G).
    if (schema.EdgeTypesFrom(type).empty()) continue;
    const graph::TypeDegreeSummary& summary = stats.ForType(type);
    total += static_cast<double>(summary.vertex_count) *
             std::pow(summary.Percentile(alpha), k);
  }
  return total;
}

double EstimateKPathCount(const graph::PropertyGraph& graph,
                          const graph::GraphStats& stats, int k,
                          double alpha) {
  return graph.schema().IsHomogeneous()
             ? HomogeneousPathEstimate(stats, k, alpha)
             : HeterogeneousPathEstimate(graph, stats, k, alpha);
}

double EstimateViewSizeEdges(const graph::PropertyGraph& graph,
                             const graph::GraphStats& stats,
                             const ViewDefinition& view, double alpha) {
  switch (view.kind) {
    case ViewKind::kKHopConnector:
      return EstimateKPathCount(graph, stats, view.k, alpha);
    case ViewKind::kSameVertexTypeConnector:
    case ViewKind::kSameEdgeTypeConnector:
    case ViewKind::kSourceToSinkConnector: {
      // Variable-length connectors: sum of k-path estimates over the hop
      // range, capped at 1..view.k.
      double total = 0;
      for (int k = 1; k <= view.k; ++k) {
        total += EstimateKPathCount(graph, stats, k, alpha);
      }
      return total;
    }
    case ViewKind::kVertexInclusionSummarizer: {
      // Exact: edges whose endpoint types are both kept. Cardinality
      // statistics for filters are a solved relational problem (§V-A);
      // we use the maintained per-type counts directly.
      double total = 0;
      const graph::GraphSchema& schema = graph.schema();
      for (size_t e = 0; e < schema.num_edge_types(); ++e) {
        const graph::EdgeTypeDecl& decl =
            schema.edge_type(static_cast<graph::EdgeTypeId>(e));
        bool src_kept = false;
        bool dst_kept = false;
        for (const std::string& t : view.type_list) {
          if (schema.vertex_type_name(decl.source_type) == t) src_kept = true;
          if (schema.vertex_type_name(decl.target_type) == t) dst_kept = true;
        }
        if (src_kept && dst_kept) {
          total += static_cast<double>(
              graph.NumEdgesOfType(static_cast<graph::EdgeTypeId>(e)));
        }
      }
      return total;
    }
    case ViewKind::kVertexRemovalSummarizer: {
      double total = 0;
      const graph::GraphSchema& schema = graph.schema();
      for (size_t e = 0; e < schema.num_edge_types(); ++e) {
        const graph::EdgeTypeDecl& decl =
            schema.edge_type(static_cast<graph::EdgeTypeId>(e));
        bool removed = false;
        for (const std::string& t : view.type_list) {
          if (schema.vertex_type_name(decl.source_type) == t ||
              schema.vertex_type_name(decl.target_type) == t) {
            removed = true;
          }
        }
        if (!removed) {
          total += static_cast<double>(
              graph.NumEdgesOfType(static_cast<graph::EdgeTypeId>(e)));
        }
      }
      return total;
    }
    case ViewKind::kEdgeInclusionSummarizer: {
      double total = 0;
      for (const std::string& t : view.type_list) {
        graph::EdgeTypeId id = graph.schema().FindEdgeType(t);
        if (id != graph::kInvalidTypeId) {
          total += static_cast<double>(graph.NumEdgesOfType(id));
        }
      }
      return total;
    }
    case ViewKind::kEdgeRemovalSummarizer: {
      double total = static_cast<double>(graph.NumLiveEdges());
      for (const std::string& t : view.type_list) {
        graph::EdgeTypeId id = graph.schema().FindEdgeType(t);
        if (id != graph::kInvalidTypeId) {
          total -= static_cast<double>(graph.NumEdgesOfType(id));
        }
      }
      return std::max(total, 0.0);
    }
    case ViewKind::kVertexAggregatorSummarizer:
    case ViewKind::kSubgraphAggregatorSummarizer:
      // Supervertices collapse groups; edge count is bounded by the base
      // edge count and typically far smaller. Without group statistics we
      // use the conservative bound.
      return static_cast<double>(graph.NumLiveEdges());
  }
  return 0;
}

}  // namespace kaskade::core
