#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "query/parser.h"

namespace kaskade::core {

namespace {

PlannerOptions MakePlannerOptions(const EngineOptions& options) {
  PlannerOptions planner = options.planner;
  // Plan choice must cost queries exactly as view selection did, or the
  // engine would select views it then refuses to use.
  planner.eval_cost = options.selector.cost.eval;
  return planner;
}

}  // namespace

Engine::Engine(graph::PropertyGraph base_graph, EngineOptions options)
    : base_(std::move(base_graph)),
      options_(options),
      catalog_(&base_),
      planner_(MakePlannerOptions(options)) {}

Result<SelectionReport> Engine::AnalyzeWorkload(
    const std::vector<std::string>& query_texts) {
  std::unique_lock lock(mu_);
  std::vector<WorkloadEntry> workload;
  workload.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    KASKADE_ASSIGN_OR_RETURN(query::Query q, query::ParseQueryText(text));
    workload.push_back(WorkloadEntry{std::move(q), 1.0});
  }
  ViewSelector selector(&base_, options_.selector);
  KASKADE_ASSIGN_OR_RETURN(SelectionReport report, selector.Select(workload));
  for (const ScoredView& scored : report.selected) {
    Result<ViewHandle> handle = catalog_.Add(scored.definition);
    if (!handle.ok()) return handle.status();
  }
  return report;
}

Status Engine::AddMaterializedView(const ViewDefinition& definition) {
  std::unique_lock lock(mu_);
  return catalog_.Add(definition).status();
}

Status Engine::RemoveView(const std::string& name) {
  std::unique_lock lock(mu_);
  return catalog_.Remove(name);
}

Status Engine::RefreshViews() {
  std::unique_lock lock(mu_);
  return catalog_.RefreshAll();
}

Status Engine::MutateBaseGraph(
    const std::function<Status(graph::PropertyGraph*)>& mutation) {
  std::unique_lock lock(mu_);
  Status status = mutation(&base_);
  // Even a failed mutation may have partially changed the graph; a
  // spurious generation bump only costs a plan-cache miss.
  catalog_.NoteBaseGraphChanged();
  return status;
}

Result<DeltaReport> Engine::ApplyDelta(graph::GraphDelta delta) {
  std::unique_lock lock(mu_);
  DeltaReport report;
  report.removals_coalesced = delta.Coalesce();
  KASKADE_ASSIGN_OR_RETURN(graph::AppliedDelta applied,
                           graph::ApplyDeltaToGraph(&base_, delta));
  report.vertices_inserted = applied.new_vertices.size();
  report.edges_inserted = applied.new_edges.size();
  report.edges_removed = applied.removed_edges;
  report.new_vertices = std::move(applied.new_vertices);
  report.new_edges = std::move(applied.new_edges);
  KASKADE_ASSIGN_OR_RETURN(DeltaMaintenanceReport maintained,
                           catalog_.ApplyBaseDelta(delta));
  report.views_incremental = maintained.views_incremental;
  report.views_rematerialized = maintained.views_rematerialized;
  report.maintenance = maintained.stats;
  return report;
}

Result<ExecutionResult> Engine::RunPlan(const Plan& plan) const {
  const graph::PropertyGraph* target = &base_;
  std::shared_ptr<const graph::CsrGraph> snapshot;
  // Only attach the CSR snapshot when the catalog is still at the
  // generation the plan was computed against (always true under the
  // reader lock; the check is a tripwire against misuse). The local
  // shared_ptr keeps the snapshot alive for the whole execution.
  const bool generation_current =
      plan.planned_generation == catalog_.generation();
  if (plan.view_name.empty()) {
    if (generation_current) snapshot = catalog_.BaseSnapshot();
  } else {
    const CatalogEntry* entry = catalog_.Find(plan.view_name);
    if (entry == nullptr) {
      return Status::Internal("cached plan references a missing view '" +
                              plan.view_name + "'");
    }
    target = &entry->view.graph;
    if (generation_current) snapshot = catalog_.SnapshotFor(entry->handle);
  }
  query::QueryExecutor executor(target, snapshot.get(), options_.executor);
  KASKADE_ASSIGN_OR_RETURN(query::Table table,
                           executor.ExecuteText(plan.executed_query));
  ExecutionResult result;
  result.table = std::move(table);
  result.used_view = !plan.view_name.empty();
  result.view_name = plan.view_name;
  result.executed_query = plan.executed_query;
  result.estimated_cost = plan.estimated_cost;
  return result;
}

Result<ExecutionResult> Engine::ExecuteUnderLock(
    const std::string& query_text) {
  KASKADE_ASSIGN_OR_RETURN(Plan plan,
                           planner_.PlanFor(query_text, base_, catalog_));
  return RunPlan(plan);
}

Result<ExecutionResult> Engine::Execute(const std::string& query_text) {
  std::shared_lock lock(mu_);
  return ExecuteUnderLock(query_text);
}

Result<ExecutionResult> Engine::Execute(const query::Query& query) {
  std::shared_lock lock(mu_);
  Plan plan;
  KASKADE_RETURN_IF_ERROR(planner_.ChoosePlan(query, base_, catalog_, &plan));
  return RunPlan(plan);
}

std::vector<Result<ExecutionResult>> Engine::ExecuteBatch(
    const std::vector<std::string>& query_texts) {
  std::vector<std::optional<Result<ExecutionResult>>> slots(
      query_texts.size());
  size_t workers = options_.batch_workers != 0
                       ? options_.batch_workers
                       : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, query_texts.size());

  if (workers <= 1) {
    std::shared_lock lock(mu_);
    for (size_t i = 0; i < query_texts.size(); ++i) {
      slots[i].emplace(ExecuteUnderLock(query_texts[i]));
    }
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&] {
      std::shared_lock lock(mu_);
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= query_texts.size()) break;
        slots[i].emplace(ExecuteUnderLock(query_texts[i]));
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  std::vector<Result<ExecutionResult>> results;
  results.reserve(slots.size());
  for (auto& slot : slots) {
    results.push_back(std::move(slot).value());
  }
  return results;
}

}  // namespace kaskade::core
