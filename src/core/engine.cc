#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/cost_model.h"
#include "durability/checkpoint.h"
#include "graph/serialization.h"
#include "query/fused_runner.h"
#include "query/parser.h"

namespace kaskade::core {

namespace {

PlannerOptions MakePlannerOptions(const EngineOptions& options) {
  PlannerOptions planner = options.planner;
  // Plan choice must cost queries exactly as view selection did, or the
  // engine would select views it then refuses to use.
  planner.eval_cost = options.selector.cost.eval;
  return planner;
}

AdvisorOptions MakeAdvisorOptions(const EngineOptions& options) {
  AdvisorOptions advisor = options.advisor;
  // Advice must select views under the same budget and cost model as
  // offline analysis and plan choice.
  advisor.selector = options.selector;
  return advisor;
}

// Rewritten plans execute against the view's own graph, whose vertex
// ids are view-local (allocated first-touch during materialization).
// The engine's contract is that a rewritten plan is equivalent to the
// raw plan on the base graph, so every vertex-reference cell must be
// mapped back through the view's lineage before the table is returned.
// Mapping happens strictly after execution: property reads inside the
// executor need the view-local ids.
query::Table MapViewTableToBase(const MaterializedView& view,
                                query::Table table) {
  bool any_vertex = false;
  for (const query::Column& c : table.columns()) any_vertex |= c.is_vertex;
  if (!any_vertex) return table;
  query::Table mapped{std::vector<query::Column>(table.columns())};
  for (const query::Table::Row& row : table.rows()) {
    query::Table::Row out = row;
    for (size_t c = 0; c < table.columns().size(); ++c) {
      if (!table.columns()[c].is_vertex || !out[c].is_int()) continue;
      const auto v = static_cast<size_t>(out[c].as_int());
      if (v < view.view_to_base.size()) {
        out[c] = static_cast<int64_t>(view.view_to_base[v]);
      }
    }
    mapped.AddRow(std::move(out));
  }
  return mapped;
}

}  // namespace

Engine::Engine(graph::PropertyGraph base_graph, EngineOptions options)
    : Engine(std::move(base_graph), std::move(options), std::nullopt) {}

Engine::Engine(graph::PropertyGraph base_graph, EngineOptions options,
               std::optional<DurableBootstrap> bootstrap)
    : base_(std::move(base_graph)),
      options_(options),
      catalog_(&base_, options.snapshot_patch, options.shards),
      planner_(MakePlannerOptions(options)) {
  // The MATCH backends shard their seed scatter on the same boundaries
  // the snapshot pipeline shards on; one knob drives both layers.
  options_.executor.shards = std::max<size_t>(1, options_.shards);
  next_auto_advise_at_.store(options_.auto_advise_every_n_ops,
                             std::memory_order_relaxed);
  if (options_.fault_hooks.enabled()) {
    // The catalog owns the snapshot-build and maintainer-apply sites;
    // share the one hook so a test sees every site through one lens.
    catalog_.SetFaultHook(options_.fault_hooks.hook);
  }
  if (options_.durability.enabled()) {
    durability_error_ = InitDurability(bootstrap);
    if (durability_error_.ok() &&
        options_.durability.checkpoint_wal_bytes > 0) {
      checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
    }
  }
  if (options_.self_heal.enabled) {
    repair_thread_ = std::thread([this] { RepairLoop(); });
  }
}

Engine::~Engine() {
  // Stop the durability/self-heal threads before anything else: both
  // take the engine locks and walk the catalog, so they must be gone
  // before the pools (and the catalog) start tearing down.
  if (checkpoint_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(checkpoint_mu_);
      checkpoint_stop_ = true;
    }
    checkpoint_cv_.notify_all();
    checkpoint_thread_.join();
  }
  if (repair_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(repair_mu_);
      repair_stop_ = true;
    }
    repair_cv_.notify_all();
    repair_thread_.join();
  }
  // Drain the batch pool first: by the caller contract no ExecuteBatch
  // is in flight, so the queue is empty and workers are parked.
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batch_stop_ = true;
  }
  batch_cv_.notify_all();
  for (std::thread& worker : batch_workers_) worker.join();

  std::vector<BuildJob> orphaned;
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    build_stop_ = true;
    // Queued-but-unstarted builds are abandoned; their placeholders are
    // aborted below so the catalog is not left with dangling entries.
    orphaned.assign(std::make_move_iterator(build_queue_.begin()),
                    std::make_move_iterator(build_queue_.end()));
    build_queue_.clear();
  }
  build_cv_.notify_all();
  for (std::thread& worker : build_workers_) worker.join();
  for (const BuildJob& job : orphaned) {
    (void)catalog_.AbortBuild(job.handle);
  }
}

// ---------------------------------------------------------------------------
// Durability: WAL wiring, checkpoints, recovery
// ---------------------------------------------------------------------------

namespace {

/// WAL payload tags: 'D' + serialized GraphDelta (ApplyDelta batches),
/// 'R' + serialized full graph (MutateBaseGraph rebaselines — an
/// arbitrary mutation has no delta form, so the post-mutation graph is
/// logged whole).
constexpr char kWalDelta = 'D';
constexpr char kWalRebaseline = 'R';

Status ApplyWalPayload(graph::PropertyGraph* graph,
                       const std::string& payload) {
  if (payload.empty()) {
    return Status::DataLoss("empty WAL payload");
  }
  switch (payload[0]) {
    case kWalDelta: {
      KASKADE_ASSIGN_OR_RETURN(graph::GraphDelta delta,
                               graph::ParseDelta(payload.substr(1)));
      return graph::ApplyDeltaToGraph(graph, delta).status();
    }
    case kWalRebaseline: {
      KASKADE_ASSIGN_OR_RETURN(*graph,
                               graph::GraphFromString(payload.substr(1)));
      return Status::OK();
    }
    default:
      return Status::DataLoss(std::string("unknown WAL payload tag '") +
                              payload[0] + "'");
  }
}

}  // namespace

Status Engine::InitDurability(std::optional<DurableBootstrap> bootstrap) {
  const DurabilityOptions& d = options_.durability;
  durability::WalOptions wal_options;
  wal_options.fsync_policy = d.fsync_policy;
  wal_options.flush_interval = d.flush_interval;
  wal_options.segment_bytes = d.wal_segment_bytes;
  wal_options.fault_hooks = options_.fault_hooks;

  uint64_t next_lsn;
  if (bootstrap.has_value()) {
    // Recovery path (`Open`): the directory already reflects `base_`;
    // just resume the log where replay left off.
    next_lsn = bootstrap->next_lsn;
  } else {
    // Fresh initialization: this engine's state supersedes whatever the
    // directory holds, at an LSN above everything already there — old
    // checkpoints become stale (and are truncated away below), never
    // ambiguous.
    uint64_t base_lsn = 0;
    std::vector<uint64_t> existing = durability::ListCheckpoints(d.dir);
    if (!existing.empty()) base_lsn = existing.front();
    // Scan (without applying) to find the log's end; this also truncates
    // any torn tail so the re-opened segment ends at a valid record.
    auto scan = durability::WriteAheadLog::Replay(
        d.dir, /*start_lsn=*/~0ull,
        [](uint64_t, const std::string&) { return Status::OK(); });
    if (!scan.ok()) return scan.status();
    base_lsn = std::max(base_lsn, scan->last_lsn);
    KASKADE_RETURN_IF_ERROR(durability::WriteCheckpoint(
        d.dir, base_, {}, base_lsn, options_.fault_hooks));
    // The catalog starts empty, so any view-set sidecar left by an
    // earlier incarnation is stale — supersede it too.
    KASKADE_RETURN_IF_ERROR(durability::WriteViewSet(d.dir, {}));
    next_lsn = base_lsn + 1;
  }

  KASKADE_ASSIGN_OR_RETURN(
      wal_, durability::WriteAheadLog::Open(d.dir, next_lsn, wal_options));
  if (!bootstrap.has_value()) {
    KASKADE_RETURN_IF_ERROR(wal_->TruncateBelow(next_lsn));
  }
  return Status::OK();
}

Result<std::unique_ptr<Engine>> Engine::Open(const std::string& dir,
                                             EngineOptions options,
                                             RecoveryReport* report) {
  options.durability.dir = dir;
  RecoveryReport recovery;

  KASKADE_ASSIGN_OR_RETURN(durability::CheckpointState checkpoint,
                           durability::LoadNewestCheckpoint(dir));
  recovery.checkpoint_lsn = checkpoint.lsn;
  for (std::string& note : checkpoint.skipped_corrupt) {
    recovery.notes.push_back(std::move(note));
  }

  // Redo pass: the WAL tail re-applies acknowledged mutations on top of
  // the checkpoint image, in LSN order. A torn tail is truncated (and
  // noted), never applied.
  graph::PropertyGraph recovered = std::move(checkpoint.graph);
  uint64_t next_expected = checkpoint.lsn + 1;
  KASKADE_ASSIGN_OR_RETURN(
      durability::ReplayReport replayed,
      durability::WriteAheadLog::Replay(
          dir, checkpoint.lsn + 1,
          [&recovered, &next_expected, &checkpoint](
              uint64_t lsn, const std::string& payload) -> Status {
            if (lsn != next_expected) {
              // The log does not connect to this checkpoint — e.g. the
              // newest checkpoint was corrupt, we fell back to an older
              // one, and the records between the two were already
              // truncated away. Refuse before applying anything: a
              // detectable gap must never be silently skipped.
              return Status::DataLoss(
                  "WAL does not connect to checkpoint at lsn " +
                  std::to_string(checkpoint.lsn) +
                  ": first replayable record is lsn " + std::to_string(lsn));
            }
            next_expected = lsn + 1;
            return ApplyWalPayload(&recovered, payload);
          }));
  recovery.records_replayed = replayed.records;
  recovery.last_lsn = std::max(checkpoint.lsn, replayed.last_lsn);
  recovery.truncated_bytes = replayed.truncated_bytes;
  if (!replayed.data_loss_note.empty()) {
    recovery.notes.push_back(replayed.data_loss_note);
  }

  DurableBootstrap bootstrap;
  bootstrap.next_lsn = recovery.last_lsn + 1;
  bootstrap.checkpoint_lsn = checkpoint.lsn;
  std::unique_ptr<Engine> engine(
      new Engine(std::move(recovered), std::move(options), bootstrap));
  KASKADE_RETURN_IF_ERROR(engine->durability_error_);

  // View contents are deliberately not persisted; re-materialize each
  // persisted definition from the recovered base. The `views.cat`
  // sidecar (rewritten on every add/remove) is the authoritative set; a
  // checkpoint's embedded copy covers directories that predate it, and
  // a corrupt sidecar degrades to that copy with a note — view contents
  // are always rebuilt from scratch, so no stale data can leak through.
  std::vector<ViewDefinition> definitions;
  auto sidecar = durability::LoadViewSet(dir);
  if (sidecar.ok()) {
    definitions = std::move(sidecar).value();
  } else if (sidecar.status().code() == StatusCode::kNotFound) {
    definitions = std::move(checkpoint.views);
  } else {
    recovery.notes.push_back("view set sidecar unusable (" +
                             sidecar.status().message() +
                             "); fell back to checkpoint view set");
    definitions = std::move(checkpoint.views);
  }
  for (const ViewDefinition& definition : definitions) {
    KASKADE_RETURN_IF_ERROR(engine->AddMaterializedView(definition));
    ++recovery.views_rematerialized;
  }
  if (report != nullptr) *report = recovery;
  return engine;
}

Status Engine::durability_error() const {
  // Written only during construction; read-only afterwards.
  return durability_error_;
}

Result<durability::WriteAheadLog::AppendToken> Engine::LogMutationLocked(
    std::string payload) {
  if (!durability_error_.ok()) return durability_error_;
  KASKADE_ASSIGN_OR_RETURN(durability::WriteAheadLog::AppendToken token,
                           wal_->Append(payload));
  wal_bytes_since_checkpoint_.fetch_add(payload.size(),
                                        std::memory_order_relaxed);
  return token;
}

Status Engine::FinishMutationDurably(
    durability::WriteAheadLog::AppendToken token) {
  KASKADE_RETURN_IF_ERROR(wal_->WaitDurable(token));
  const uint64_t threshold = options_.durability.checkpoint_wal_bytes;
  if (threshold > 0 &&
      wal_bytes_since_checkpoint_.load(std::memory_order_relaxed) >=
          threshold) {
    // Claim the trigger (reset to zero) so one crossing schedules one
    // checkpoint; bytes appended meanwhile re-arm it.
    wal_bytes_since_checkpoint_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(checkpoint_mu_);
      checkpoint_requested_ = true;
    }
    checkpoint_cv_.notify_one();
  }
  return Status::OK();
}

Result<uint64_t> Engine::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durability is not enabled");
  }
  KASKADE_RETURN_IF_ERROR(durability_error_);
  // One checkpointer at a time (manual call vs background thread);
  // interleaved truncations would be safe but pointless work.
  std::lock_guard<std::mutex> run(checkpoint_run_mu_);

  graph::PropertyGraph snapshot{graph::GraphSchema{}};
  std::vector<ViewDefinition> definitions;
  uint64_t lsn;
  {
    // Reader lock: writers (and their WAL appends) are excluded, so the
    // graph copy and the LSN agree; readers keep flowing.
    std::shared_lock lock(mu_);
    snapshot = base_;
    lsn = wal_->next_lsn() - 1;
    for (const CatalogEntry* entry : catalog_.Entries()) {
      if (entry->state == ViewState::kDropping) continue;
      definitions.push_back(entry->view.definition);
    }
  }
  // The expensive serialization + fsync runs with no engine lock held.
  KASKADE_RETURN_IF_ERROR(durability::WriteCheckpoint(
      options_.durability.dir, snapshot, definitions, lsn,
      options_.fault_hooks));
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  KASKADE_RETURN_IF_ERROR(wal_->TruncateBelow(lsn + 1));
  return lsn;
}

Status Engine::PersistViewSetLocked() {
  if (wal_ == nullptr) return Status::OK();
  KASKADE_RETURN_IF_ERROR(durability_error_);
  std::vector<ViewDefinition> definitions;
  for (const CatalogEntry* entry : catalog_.Entries()) {
    if (entry->state == ViewState::kDropping) continue;
    definitions.push_back(entry->view.definition);
  }
  return durability::WriteViewSet(options_.durability.dir, definitions);
}

void Engine::CheckpointLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(checkpoint_mu_);
      checkpoint_cv_.wait(
          lock, [&] { return checkpoint_stop_ || checkpoint_requested_; });
      if (checkpoint_stop_) return;
      checkpoint_requested_ = false;
    }
    Result<uint64_t> written = Checkpoint();
    if (!written.ok()) {
      // The WAL still holds the full history — a failed checkpoint only
      // defers truncation. Count it and wait for the next trigger.
      checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Self-healing: quarantined-view repair worker
// ---------------------------------------------------------------------------

void Engine::NotifyRepair() {
  if (!options_.self_heal.enabled) return;
  {
    std::lock_guard<std::mutex> lock(repair_mu_);
    repair_poke_ = true;
  }
  repair_cv_.notify_one();
}

void Engine::RepairLoop() {
  const SelfHealOptions& heal = options_.self_heal;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(repair_mu_);
      // Sleep until poked (new quarantine) or, when retries are
      // pending, until the earliest backoff deadline.
      auto wake = std::chrono::steady_clock::time_point::max();
      for (const auto& [name, state] : repair_state_) {
        if (!state.gave_up) wake = std::min(wake, state.next_attempt);
      }
      if (wake == std::chrono::steady_clock::time_point::max()) {
        repair_cv_.wait(lock, [&] { return repair_stop_ || repair_poke_; });
      } else {
        repair_cv_.wait_until(lock, wake,
                              [&] { return repair_stop_ || repair_poke_; });
      }
      if (repair_stop_) return;
      repair_poke_ = false;
    }

    // Snapshot the quarantined set under the reader lock; repairs below
    // take the writer lock one view at a time, so a long rebuild never
    // blocks queries for the whole scan.
    std::vector<ViewDefinition> quarantined;
    {
      std::shared_lock lock(mu_);
      for (const CatalogEntry* entry : catalog_.Entries()) {
        if (entry->state == ViewState::kQuarantined) {
          quarantined.push_back(entry->view.definition);
        }
      }
    }

    const auto now = std::chrono::steady_clock::now();
    for (const ViewDefinition& definition : quarantined) {
      const std::string name = definition.Name();
      {
        std::lock_guard<std::mutex> lock(repair_mu_);
        RepairState& state = repair_state_[name];
        if (state.gave_up || now < state.next_attempt) continue;
      }
      // `Add` materializes and reclaims the quarantined entry in place
      // (same path a manual rebuild takes).
      Status repaired;
      {
        std::unique_lock lock(mu_);
        repaired = catalog_.Add(definition).status();
      }
      std::lock_guard<std::mutex> lock(repair_mu_);
      if (repaired.ok()) {
        quarantine_repairs_.fetch_add(1, std::memory_order_relaxed);
        repair_state_.erase(name);
      } else {
        repair_failures_.fetch_add(1, std::memory_order_relaxed);
        RepairState& state = repair_state_[name];
        ++state.attempts;
        if (heal.max_attempts > 0 && state.attempts >= heal.max_attempts) {
          state.gave_up = true;
          continue;
        }
        auto backoff = heal.initial_backoff;
        for (size_t i = 1; i < state.attempts && backoff < heal.max_backoff;
             ++i) {
          backoff *= 2;
        }
        state.next_attempt =
            std::chrono::steady_clock::now() + std::min(backoff,
                                                        heal.max_backoff);
      }
    }

    // Prune names that left quarantine some other way (manual reclaim,
    // removal) so a stale gave_up entry cannot block a future repair of
    // a new view with the same name.
    std::lock_guard<std::mutex> lock(repair_mu_);
    for (auto it = repair_state_.begin(); it != repair_state_.end();) {
      bool still_quarantined = false;
      for (const ViewDefinition& definition : quarantined) {
        if (definition.Name() == it->first) {
          still_quarantined = true;
          break;
        }
      }
      it = still_quarantined ? std::next(it) : repair_state_.erase(it);
    }
  }
}

// ---------------------------------------------------------------------------
// Offline analysis + online advice
// ---------------------------------------------------------------------------

Result<SelectionReport> Engine::AnalyzeWorkload(
    const std::vector<std::string>& query_texts) {
  std::vector<WorkloadEntry> workload;
  workload.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    KASKADE_ASSIGN_OR_RETURN(query::Query q, query::ParseQueryText(text));
    workload.push_back(WorkloadEntry{std::move(q), 1.0});
  }
  AdvicePlan plan;
  {
    std::shared_lock lock(mu_);
    Advisor advisor(&base_, MakeAdvisorOptions(options_));
    KASKADE_ASSIGN_OR_RETURN(plan, advisor.AdviseWorkload(workload, catalog_));
  }
  // The offline analyzer only ever adds views; drops are the online
  // advisor's job.
  plan.drop.clear();
  // Blocking semantics: callers expect the selected views to be
  // queryable on return. Only failures of the builds scheduled *here*
  // are this analysis failing; the handles are reserved before the
  // builds become runnable, so a concurrent TakeBuildError drain can
  // never steal them, and concurrent rounds' errors stay in the slot
  // for their own callers.
  KASKADE_ASSIGN_OR_RETURN(AdviceReport applied,
                           ApplyAdviceImpl(plan, /*reserve_errors=*/true));
  WaitForBuilds();
  Status build_error = TakeBuildErrorForHandles(applied.scheduled_handles);
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    for (ViewHandle handle : applied.scheduled_handles) {
      reserved_error_handles_.erase(handle);
    }
  }
  KASKADE_RETURN_IF_ERROR(build_error);
  return plan.selection;
}

Result<AdvicePlan> Engine::Advise() {
  WorkloadSnapshot snapshot = tracker_.Snapshot();
  std::shared_lock lock(mu_);
  Advisor advisor(&base_, MakeAdvisorOptions(options_));
  return advisor.Advise(snapshot, catalog_);
}

Result<AdviceReport> Engine::ApplyAdvice(const AdvicePlan& plan) {
  return ApplyAdviceImpl(plan, /*reserve_errors=*/false);
}

Result<AdviceReport> Engine::ApplyAdviceImpl(const AdvicePlan& plan,
                                             bool reserve_errors) {
  AdviceReport report;
  std::unique_lock lock(mu_);
  for (const std::string& name : plan.drop) {
    Status status = catalog_.Remove(name);
    if (status.ok()) {
      ++report.views_dropped;
    } else if (status.code() != StatusCode::kNotFound &&
               status.code() != StatusCode::kFailedPrecondition) {
      return status;
    }
    // NotFound (already gone) and FailedPrecondition (still building —
    // the next advice round will re-evaluate it) keep advice idempotent.
  }
  for (const ViewDefinition& definition : plan.create) {
    Result<ViewHandle> handle = catalog_.BeginBuild(definition);
    if (!handle.ok()) {
      if (handle.status().code() == StatusCode::kAlreadyExists) continue;
      return handle.status();
    }
    EnqueueBuildLocked(BuildJob{*handle, definition}, reserve_errors);
    ++report.builds_scheduled;
    report.scheduled_handles.push_back(*handle);
  }
  return report;
}

Result<AdviceReport> Engine::AutoAdvise() {
  KASKADE_ASSIGN_OR_RETURN(AdvicePlan plan, Advise());
  Result<AdviceReport> report = ApplyAdvice(plan);
  // Epoch decay: after every self-tuning round, fade what has been seen
  // so the next round weights recent traffic over history. Decaying
  // even when the round proposed nothing is deliberate — a workload
  // that went quiet must still lose weight.
  if (report.ok() && options_.workload_decay < 1.0) {
    tracker_.Decay(options_.workload_decay);
  }
  return report;
}

void Engine::MaybeAutoAdvise() {
  if (options_.auto_advise_every_n_ops == 0) return;
  uint64_t total = tracker_.total_recorded();
  uint64_t threshold = next_auto_advise_at_.load(std::memory_order_relaxed);
  if (total < threshold) return;
  // One winner per crossing: losers see the advanced threshold and
  // return to their queries.
  if (!next_auto_advise_at_.compare_exchange_strong(
          threshold, total + options_.auto_advise_every_n_ops,
          std::memory_order_relaxed)) {
    return;
  }
  Result<AdviceReport> report = AutoAdvise();
  auto_advises_.fetch_add(1, std::memory_order_relaxed);
  if (!report.ok()) {
    // Never surface an advice failure through the query that happened
    // to cross the threshold; monitors read the error counter.
    auto_advise_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

EngineTelemetry Engine::TelemetrySnapshot() const {
  EngineTelemetry t;
  t.catalog_generation = catalog_.generation();
  t.views_ready = catalog_.num_ready();
  t.plan_cache_hits = planner_.cache_hits();
  t.plan_cache_misses = planner_.cache_misses();
  t.snapshot_hits = catalog_.snapshot_hits();
  t.snapshot_patches = catalog_.snapshot_patches();
  t.snapshot_full_builds = catalog_.snapshot_full_builds();
  t.builds_completed = builds_completed_.load(std::memory_order_relaxed);
  t.builds_replayed = builds_replayed_.load(std::memory_order_relaxed);
  t.build_retries = build_retries_.load(std::memory_order_relaxed);
  t.builds_pending = builds_pending();
  t.auto_advises = auto_advises_.load(std::memory_order_relaxed);
  t.auto_advise_errors = auto_advise_errors_.load(std::memory_order_relaxed);
  t.queries_recorded = tracker_.total_recorded();
  t.distinct_queries = tracker_.distinct_queries();
  t.fused_groups = fused_groups_.load(std::memory_order_relaxed);
  t.fused_members = fused_members_.load(std::memory_order_relaxed);
  t.traversal_expansions =
      traversal_expansions_.load(std::memory_order_relaxed);
  t.queries_shed = queries_shed_.load(std::memory_order_relaxed);
  t.queries_timed_out = queries_timed_out_.load(std::memory_order_relaxed);
  t.deadline_checks = deadline_checks_.load(std::memory_order_relaxed);
  t.views_quarantined = catalog_.num_quarantined();
  t.quarantine_events = catalog_.quarantine_events();
  t.snapshot_build_failures = catalog_.snapshot_build_failures();
  t.batch_worker_faults =
      batch_worker_faults_.load(std::memory_order_relaxed);
  t.patch_segments_copied = catalog_.patch_segments_copied();
  t.patch_segments_shared = catalog_.patch_segments_shared();
  t.patch_bytes_copied = catalog_.patch_bytes_copied();
  t.effective_dirty_fraction = catalog_.effective_max_dirty_fraction();
  t.shard_writer_acquisitions = catalog_.shard_writer_acquisitions();
  if (wal_ != nullptr) {
    durability::WalTelemetry wal = wal_->telemetry();
    t.wal_appends = wal.appends;
    t.wal_bytes = wal.bytes;
    t.wal_fsyncs = wal.fsyncs;
    t.group_commit_batches = wal.batches;
  }
  t.checkpoints_written = checkpoints_written_.load(std::memory_order_relaxed);
  t.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_relaxed);
  t.quarantine_repairs = quarantine_repairs_.load(std::memory_order_relaxed);
  t.repair_failures = repair_failures_.load(std::memory_order_relaxed);
  return t;
}

// ---------------------------------------------------------------------------
// Background build pool
// ---------------------------------------------------------------------------

void Engine::EnqueueBuildLocked(BuildJob job, bool reserve_errors) {
  std::lock_guard<std::mutex> lock(build_mu_);
  // Reserve in the same critical section that makes the job runnable:
  // no worker can fail the build before the reservation exists.
  if (reserve_errors) reserved_error_handles_.insert(job.handle);
  build_queue_.push_back(std::move(job));
  if (build_workers_.empty()) {
    size_t workers = std::max<size_t>(1, options_.build_workers);
    build_workers_.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      build_workers_.emplace_back([this] { BuildWorkerLoop(); });
    }
  }
  build_cv_.notify_one();
}

void Engine::BuildWorkerLoop() {
  while (true) {
    BuildJob job;
    {
      std::unique_lock<std::mutex> lock(build_mu_);
      build_cv_.wait(lock,
                     [&] { return build_stop_ || !build_queue_.empty(); });
      if (build_stop_) return;  // destructor aborts what is still queued
      job = std::move(build_queue_.front());
      build_queue_.pop_front();
      ++builds_running_;
    }
    RunBuildJob(std::move(job));
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      --builds_running_;
    }
    // The stale pending-delta log (bounded at kMaxPendingDeltas) is
    // reclaimed by the next writer's NoteBaseChangedLocked; taking the
    // exclusive lock here just to clear it early would stall readers.
    build_idle_cv_.notify_all();
  }
}

void Engine::RunBuildJob(BuildJob job) {
  // A build that keeps losing the race against writers must still
  // terminate: the final attempt publishes (or rebuilds) while *holding*
  // the writer lock, trading one blocking build for guaranteed progress.
  constexpr int kMaxAttempts = 3;
  const ViewDefinition& definition = job.definition;
  for (int attempt = 0;; ++attempt) {
    uint64_t pinned_version = 0;
    ViewMaintainer::BasePin pin;
    std::optional<graph::PropertyGraph> pinned_base;
    {
      // Pin the base under the reader lock just long enough to copy it:
      // readers run concurrently throughout, and writers only wait out
      // the O(|V|+|E|) copy, never the materialization itself.
      std::shared_lock lock(mu_);
      pinned_version = base_version_;
      pin = ViewMaintainer::PinOf(base_);
      if (options_.build_hooks.during_build) options_.build_hooks.during_build();
      pinned_base.emplace(base_);
    }
    // The expensive part runs with no engine lock held at all; deltas
    // landing meanwhile are replayed at publish below.
    Status materialize_fault =
        options_.fault_hooks.Fire(FaultSite::kMaterialize, definition.Name());
    Result<MaterializedView> built =
        materialize_fault.ok() ? Materialize(*pinned_base, definition)
                               : Result<MaterializedView>(materialize_fault);
    pinned_base.reset();
    if (!built.ok()) {
      FailBuild(job, built.status());
      return;
    }
    if (options_.build_hooks.before_publish) options_.build_hooks.before_publish();

    std::unique_lock lock(mu_);
    Status publish_fault =
        options_.fault_hooks.Fire(FaultSite::kPublish, definition.Name());
    if (!publish_fault.ok()) {
      lock.unlock();
      FailBuild(job, publish_fault);
      return;
    }
    if (base_version_ == pinned_version) {
      Status status = catalog_.Publish(job.handle, std::move(*built));
      if (!status.ok()) {
        lock.unlock();
        FailBuild(job, status);
        return;
      }
      builds_completed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    // The base moved while we were building. Gather what landed after
    // the pin: if every change is a logged ApplyDelta batch, the view
    // can catch up through the incremental-maintenance path instead of
    // being rebuilt.
    std::vector<graph::EdgeId> removals;
    size_t inserts = 0;
    uint64_t logged = 0;
    for (const PendingDelta& pending : delta_log_) {
      if (pending.base_version <= pinned_version) continue;
      ++logged;
      inserts += pending.delta->edge_inserts;
      removals.insert(removals.end(), pending.delta->edge_removals.begin(),
                      pending.delta->edge_removals.end());
    }
    const bool fully_logged = logged == base_version_ - pinned_version;
    if (fully_logged && ViewMaintainer::SupportsKind(definition.kind) &&
        !PreferRematerialization(base_, definition, inserts,
                                 removals.size())) {
      // Replay: a maintainer pinned at the build position subtracts the
      // removed paths and catches up on inserted edges via its
      // watermark, exactly as if the batches had been reported live.
      ViewMaintainer replayer(&base_, &*built, pin);
      graph::GraphDelta catchup;
      catchup.edge_removals = std::move(removals);
      Result<MaintenanceStats> replayed = replayer.ApplyDelta(catchup);
      if (replayed.ok()) {
        Status status = catalog_.Publish(job.handle, std::move(*built));
        if (!status.ok()) {
          lock.unlock();
          FailBuild(job, status);
          return;
        }
        builds_completed_.fetch_add(1, std::memory_order_relaxed);
        builds_replayed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Replay failures (out-of-band state the log missed) fall through
      // to a rebuild.
    }
    build_retries_.fetch_add(1, std::memory_order_relaxed);
    if (attempt + 1 >= kMaxAttempts) {
      Result<MaterializedView> fresh = Materialize(base_, definition);
      Status status = fresh.ok()
                          ? catalog_.Publish(job.handle, std::move(*fresh))
                          : fresh.status();
      if (!status.ok()) {
        lock.unlock();
        FailBuild(job, status);
        return;
      }
      builds_completed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Retry in the background against the newer base.
  }
}

void Engine::FailBuild(const BuildJob& job, const Status& status) {
  {
    // Quarantine, not abort: the name stays reserved with the failure
    // recorded in the entry's health, so monitors can see what broke
    // and a later advice round can reclaim the entry by rebuilding.
    // Queries meanwhile fall back to the base graph.
    std::unique_lock lock(mu_);
    (void)catalog_.Quarantine(job.handle, status);
  }
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    // Bound the slot: a fire-and-forget advice loop whose view fails
    // persistently would otherwise grow it one entry per round forever.
    // Evict the oldest *unreserved* entry — a reserved one belongs to a
    // blocking round that is about to collect it (at worst the slot
    // temporarily exceeds the cap by the handful of reserved failures).
    constexpr size_t kMaxBuildErrors = 64;
    if (build_errors_.size() >= kMaxBuildErrors) {
      auto victim = std::find_if(
          build_errors_.begin(), build_errors_.end(),
          [&](const auto& tagged) {
            return reserved_error_handles_.count(tagged.first) == 0;
          });
      if (victim != build_errors_.end()) build_errors_.erase(victim);
    }
    build_errors_.emplace_back(job.handle, status);
  }
  NotifyRepair();
}

Status Engine::TakeBuildErrorForHandles(
    const std::vector<ViewHandle>& handles) {
  std::lock_guard<std::mutex> lock(build_mu_);
  Status first = Status::OK();
  auto removed = std::remove_if(
      build_errors_.begin(), build_errors_.end(), [&](const auto& tagged) {
        if (std::find(handles.begin(), handles.end(), tagged.first) ==
            handles.end()) {
          return false;
        }
        if (first.ok()) first = tagged.second;
        return true;
      });
  build_errors_.erase(removed, build_errors_.end());
  return first;
}

void Engine::WaitForBuilds() {
  std::unique_lock<std::mutex> lock(build_mu_);
  build_idle_cv_.wait(
      lock, [&] { return build_queue_.empty() && builds_running_ == 0; });
}

Status Engine::WaitForBuilds(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(build_mu_);
  const bool idle = build_idle_cv_.wait_for(lock, timeout, [&] {
    return build_queue_.empty() && builds_running_ == 0;
  });
  if (idle) return Status::OK();
  return Status::DeadlineExceeded(
      "background builds still pending after the wait budget (builds "
      "continue; re-wait or poll builds_pending())");
}

size_t Engine::builds_pending() const {
  std::lock_guard<std::mutex> lock(build_mu_);
  return build_queue_.size() + builds_running_;
}

Status Engine::TakeBuildError() {
  std::lock_guard<std::mutex> lock(build_mu_);
  // Pop only the oldest unreserved entry: wholesale clearing (or taking
  // a reserved one) would steal a failure a concurrent blocking round
  // is about to collect for its own builds.
  for (auto it = build_errors_.begin(); it != build_errors_.end(); ++it) {
    if (reserved_error_handles_.count(it->first) != 0) continue;
    Status oldest = it->second;
    build_errors_.erase(it);
    return oldest;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

Status Engine::AddMaterializedView(const ViewDefinition& definition) {
  std::unique_lock lock(mu_);
  KASKADE_RETURN_IF_ERROR(catalog_.Add(definition).status());
  return PersistViewSetLocked();
}

Status Engine::RemoveView(const std::string& name) {
  std::unique_lock lock(mu_);
  KASKADE_RETURN_IF_ERROR(catalog_.Remove(name));
  return PersistViewSetLocked();
}

Status Engine::RefreshViews() {
  std::unique_lock lock(mu_);
  return catalog_.RefreshAll();
}

void Engine::NoteBaseChangedLocked(graph::DeltaFootprintPtr delta) {
  // Bound the log under a continuous delta stream: past the cap,
  // dropping entries merely leaves version gaps, which the publish
  // path's fully-logged check turns into a (correct) rebuild. Entries
  // are shared pointers to the applied batches' footprints (also held
  // by the catalog's snapshot trail), so the log's own cost is one
  // pointer per batch.
  constexpr size_t kMaxPendingDeltas = 1024;
  ++base_version_;
  bool builds_in_flight;
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    builds_in_flight = !build_queue_.empty() || builds_running_ > 0;
  }
  if (!builds_in_flight || delta_log_.size() >= kMaxPendingDeltas) {
    delta_log_.clear();
    if (!builds_in_flight) return;
  }
  if (delta != nullptr) {
    delta_log_.push_back(PendingDelta{base_version_, std::move(delta)});
  }
  // A null delta (MutateBaseGraph) leaves a version gap no log entry
  // covers, which is exactly how in-flight builds learn they must
  // re-materialize rather than replay.
}

Status Engine::MutateBaseGraph(
    const std::function<Status(graph::PropertyGraph*)>& mutation) {
  std::unique_lock lock(mu_);
  Status status = mutation(&base_);
  // Even a failed mutation may have partially changed the graph; a
  // spurious generation bump only costs a plan-cache miss.
  catalog_.NoteBaseGraphChanged();
  NoteBaseChangedLocked(nullptr);
  if (wal_ != nullptr) {
    // An arbitrary mutation has no delta form, so the WAL records the
    // post-mutation graph whole (tombstones preserved: later delta
    // records reference this exact id space). Logged even when the
    // mutation failed — it may have partially changed the graph, and
    // recovery must land on what is actually in memory.
    graph::SaveOptions save_options;
    save_options.preserve_tombstones = true;
    auto token = LogMutationLocked(
        kWalRebaseline + graph::GraphToString(base_, save_options));
    if (!token.ok()) return token.status();
    lock.unlock();
    KASKADE_RETURN_IF_ERROR(FinishMutationDurably(token.value()));
  }
  return status;
}

Result<DeltaReport> Engine::ApplyDelta(graph::GraphDelta delta) {
  std::unique_lock lock(mu_);
  DeltaReport report;
  report.removals_coalesced = delta.Coalesce();
  KASKADE_ASSIGN_OR_RETURN(graph::AppliedDelta applied,
                           graph::ApplyDeltaToGraph(&base_, delta));
  report.vertices_inserted = applied.new_vertices.size();
  report.edges_inserted = applied.new_edges.size();
  report.edges_removed = applied.removed_edges;
  report.new_vertices = std::move(applied.new_vertices);
  report.new_edges = std::move(applied.new_edges);
  // One immutable footprint of the applied batch (removal ids + insert
  // counts; insert payloads were consumed by the application above and
  // must not be pinned), shared by every log that outlives this call:
  // the pending-delta log (replay-at-publish for in-flight builds) and
  // the catalog's snapshot delta trail. Skip materializing it when no
  // log would keep it (write-only phases: no builds in flight, no
  // patchable base snapshot) — both consumers treat null safely, the
  // catalog by conservatively invalidating.
  graph::DeltaFootprintPtr footprint;
  if (builds_pending() > 0 || catalog_.WantsBaseDeltaTrail()) {
    footprint = std::make_shared<const graph::DeltaFootprint>(delta);
  }
  // The graph has changed even if maintenance fails below — in-flight
  // builds must see the new version either way.
  NoteBaseChangedLocked(footprint);
  durability::WriteAheadLog::AppendToken wal_token;
  bool logged = false;
  if (wal_ != nullptr) {
    // Log after the in-memory apply succeeded (so the record describes a
    // real transition) but before maintenance: the base has genuinely
    // changed, so even a maintenance failure below must stay on the log.
    // Still under `mu_`, so LSN order equals apply order.
    KASKADE_ASSIGN_OR_RETURN(
        wal_token, LogMutationLocked(kWalDelta + graph::SerializeDelta(delta)));
    logged = true;
  }
  KASKADE_ASSIGN_OR_RETURN(
      DeltaMaintenanceReport maintained,
      catalog_.ApplyBaseDelta(delta, std::move(footprint)));
  report.views_incremental = maintained.views_incremental;
  report.views_rematerialized = maintained.views_rematerialized;
  report.maintenance = maintained.stats;
  const bool poke_repair = maintained.views_quarantined > 0;
  lock.unlock();
  if (poke_repair) NotifyRepair();
  if (logged) {
    // Durability wait happens outside the engine lock so concurrent
    // writers share one group-commit fsync.
    KASKADE_RETURN_IF_ERROR(FinishMutationDurably(wal_token));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

std::chrono::steady_clock::time_point Engine::EffectiveDeadline(
    const CallOptions& call) const {
  if (call.deadline != std::chrono::steady_clock::time_point{}) {
    return call.deadline;
  }
  if (options_.default_query_deadline.count() > 0) {
    return std::chrono::steady_clock::now() + options_.default_query_deadline;
  }
  return {};
}

Status Engine::AdmitQuery() {
  if (options_.max_concurrent_queries == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(admission_mu_);
  auto slot_free = [&] { return in_flight_ < options_.max_concurrent_queries; };
  if (!slot_free() &&
      (options_.admission_wait_budget.count() <= 0 ||
       !admission_cv_.wait_for(lock, options_.admission_wait_budget,
                               slot_free))) {
    return Status::Unavailable(
        "engine overloaded: admission gate full past the wait budget");
  }
  ++in_flight_;
  return Status::OK();
}

void Engine::ReleaseQuery() {
  if (options_.max_concurrent_queries == 0) return;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --in_flight_;
  }
  admission_cv_.notify_one();
}

Result<ExecutionResult> Engine::RunPlan(
    const Plan& plan, std::chrono::steady_clock::time_point deadline) const {
  const graph::PropertyGraph* target = &base_;
  const CatalogEntry* entry = nullptr;
  std::shared_ptr<const graph::CsrGraph> snapshot;
  // Only attach the CSR snapshot when the catalog is still at the
  // generation the plan was computed against (always true under the
  // reader lock; the check is a tripwire against misuse). The local
  // shared_ptr keeps the snapshot alive for the whole execution.
  const bool generation_current =
      plan.planned_generation == catalog_.generation();
  if (plan.view_name.empty()) {
    if (generation_current) snapshot = catalog_.BaseSnapshot();
  } else {
    entry = catalog_.Find(plan.view_name);
    // A non-ready entry is as unusable as a missing one: a stale plan
    // must not silently run against a kBuilding placeholder's empty
    // graph.
    if (entry == nullptr || entry->state != ViewState::kReady) {
      return Status::Internal("cached plan references a missing view '" +
                              plan.view_name + "'");
    }
    target = &entry->view.graph;
    if (generation_current) snapshot = catalog_.SnapshotFor(entry->handle);
  }
  query::ExecutorOptions exec_options = options_.executor;
  exec_options.deadline = deadline;
  // A null snapshot (cold cache with an injected snapshot-build fault)
  // degrades this execution to the legacy backend — slower, still exact.
  query::QueryExecutor executor(target, snapshot.get(), exec_options);
  query::ExecutionTiming timing;
  Result<query::Table> table =
      executor.ExecuteText(plan.executed_query, &timing);
  // Count clock tests even for failed (expired) executions — those are
  // exactly the ones the overload telemetry is about.
  deadline_checks_.fetch_add(timing.deadline_checks,
                             std::memory_order_relaxed);
  if (!table.ok()) return table.status();
  if (entry != nullptr) *table = MapViewTableToBase(entry->view, std::move(*table));
  ExecutionResult result;
  result.table = std::move(*table);
  result.used_view = !plan.view_name.empty();
  result.view_name = plan.view_name;
  result.executed_query = plan.executed_query;
  result.estimated_cost = plan.estimated_cost;
  result.latency_us = timing.elapsed_us;
  result.expansions = timing.expansions;
  return result;
}

Result<ExecutionResult> Engine::ExecutePlannedLocked(
    const Plan& plan, std::chrono::steady_clock::time_point deadline) {
  Result<ExecutionResult> result = RunPlan(plan, deadline);
  if (result.ok()) {
    traversal_expansions_.fetch_add(result->expansions,
                                    std::memory_order_relaxed);
    tracker_.Record(plan.canonical_query, result->latency_us,
                    plan.estimated_cost, result->used_view, result->view_name,
                    /*fused=*/false);
  }
  return result;
}

Result<ExecutionResult> Engine::ExecuteUnderLock(
    const std::string& query_text,
    std::chrono::steady_clock::time_point deadline) {
  KASKADE_ASSIGN_OR_RETURN(Plan plan,
                           planner_.PlanFor(query_text, base_, catalog_));
  return ExecutePlannedLocked(plan, deadline);
}

Result<ExecutionResult> Engine::Execute(const std::string& query_text,
                                        const CallOptions& call) {
  Status admitted = AdmitQuery();
  if (!admitted.ok()) {
    queries_shed_.fetch_add(1, std::memory_order_relaxed);
    return admitted;
  }
  Result<ExecutionResult> result = Status::Internal("unreachable");
  {
    std::shared_lock lock(mu_);
    result = ExecuteUnderLock(query_text, EffectiveDeadline(call));
  }
  ReleaseQuery();
  if (!result.ok() &&
      result.status().code() == StatusCode::kDeadlineExceeded) {
    queries_timed_out_.fetch_add(1, std::memory_order_relaxed);
  }
  // Outside the reader lock: a triggered advice round takes the writer
  // lock for its drop/schedule step and would self-deadlock under it.
  MaybeAutoAdvise();
  return result;
}

Result<ExecutionResult> Engine::Execute(const query::Query& query,
                                        const CallOptions& call) {
  // Render to canonical text so both overloads share one plan-cache
  // path and one workload-tracker entry.
  return Execute(query.ToString(), call);
}

void Engine::RunFusedGroupLocked(
    const std::vector<std::optional<Plan>>& plans,
    const std::vector<size_t>& indices,
    std::chrono::steady_clock::time_point deadline,
    std::vector<std::optional<Result<ExecutionResult>>>* slots) {
  const Plan& lead = *plans[indices.front()];
  auto run_solo = [&] {
    for (size_t i : indices) {
      (*slots)[i].emplace(ExecutePlannedLocked(*plans[i], deadline));
    }
  };
  // Grouping happened under the same reader hold that planned the
  // batch, so the generation cannot have moved; the check is a tripwire
  // against misuse, exactly as in RunPlan.
  if (lead.planned_generation != catalog_.generation()) {
    run_solo();
    return;
  }
  const graph::PropertyGraph* target = &base_;
  const CatalogEntry* entry = nullptr;
  std::shared_ptr<const graph::CsrGraph> snapshot;
  if (lead.view_name.empty()) {
    snapshot = catalog_.BaseSnapshot();
  } else {
    entry = catalog_.Find(lead.view_name);
    if (entry == nullptr || entry->state != ViewState::kReady) {
      Status missing = Status::Internal(
          "cached plan references a missing view '" + lead.view_name + "'");
      for (size_t i : indices) (*slots)[i].emplace(missing);
      return;
    }
    target = &entry->view.graph;
    snapshot = catalog_.SnapshotFor(entry->handle);
  }
  if (snapshot == nullptr) {
    // Fusion shares a CSR traversal; without a snapshot there is
    // nothing to share.
    run_solo();
    return;
  }

  std::vector<const query::MatchQuery*> members;
  members.reserve(indices.size());
  for (size_t i : indices) members.push_back(plans[i]->match_ast.get());
  query::ExecutorOptions exec_options = options_.executor;
  exec_options.deadline = deadline;
  query::FusedGroupStats stats;
  std::vector<Result<query::Table>> tables = query::ExecuteFusedMatch(
      *target, *snapshot, members, exec_options, &stats);
  deadline_checks_.fetch_add(stats.deadline_checks,
                             std::memory_order_relaxed);

  fused_groups_.fetch_add(1, std::memory_order_relaxed);
  fused_members_.fetch_add(indices.size(), std::memory_order_relaxed);
  traversal_expansions_.fetch_add(stats.expansions,
                                  std::memory_order_relaxed);
  const double per_member_us =
      stats.elapsed_us / static_cast<double>(indices.size());
  for (size_t j = 0; j < indices.size(); ++j) {
    const size_t slot = indices[j];
    const Plan& plan = *plans[slot];
    if (!tables[j].ok()) {
      (*slots)[slot].emplace(tables[j].status());
      continue;
    }
    ExecutionResult result;
    result.table = entry != nullptr
                       ? MapViewTableToBase(entry->view, std::move(*tables[j]))
                       : std::move(*tables[j]);
    result.used_view = !plan.view_name.empty();
    result.view_name = plan.view_name;
    result.executed_query = plan.executed_query;
    result.estimated_cost = plan.estimated_cost;
    result.latency_us = per_member_us;
    result.expansions = stats.expansions;
    result.fused = true;
    tracker_.Record(plan.canonical_query, per_member_us, plan.estimated_cost,
                    result.used_view, result.view_name, /*fused=*/true);
    (*slots)[slot].emplace(std::move(result));
  }
}

void Engine::DrainBatchJob(BatchJob* job) {
  const size_t total = job->tasks.size();
  while (true) {
    size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= total) return;
    job->tasks[i]();
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      // Lock-then-notify so the owner cannot check the predicate and
      // block between our increment and the notification.
      std::lock_guard<std::mutex> lock(batch_mu_);
      batch_done_cv_.notify_all();
    }
  }
}

void Engine::BatchWorkerLoop() {
  while (true) {
    std::shared_ptr<BatchJob> job;
    {
      std::unique_lock<std::mutex> lock(batch_mu_);
      batch_cv_.wait(lock, [&] {
        if (batch_stop_) return true;
        for (const std::shared_ptr<BatchJob>& queued : batch_queue_) {
          if (queued->next.load(std::memory_order_relaxed) <
              queued->tasks.size()) {
            return true;
          }
        }
        return false;
      });
      if (batch_stop_) return;
      for (const std::shared_ptr<BatchJob>& queued : batch_queue_) {
        if (queued->next.load(std::memory_order_relaxed) <
            queued->tasks.size()) {
          job = queued;
          break;
        }
      }
    }
    if (job == nullptr) continue;
    Status fault =
        options_.fault_hooks.Fire(FaultSite::kBatchWorker, "batch worker");
    if (!fault.ok()) {
      // Abandon the round: the calling thread always drains its own job
      // (`RunBatchTasks` participates), so every task still completes —
      // the batch just loses this worker's parallelism. Yield so a
      // persistently-failing hook cannot starve the caller of the core.
      batch_worker_faults_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
      continue;
    }
    DrainBatchJob(job.get());
  }
}

void Engine::RunBatchTasks(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  size_t workers = options_.batch_workers != 0
                       ? options_.batch_workers
                       : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, tasks.size());
  if (workers <= 1) {
    for (std::function<void()>& task : tasks) task();
    return;
  }
  auto job = std::make_shared<BatchJob>();
  job->tasks = std::move(tasks);
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batch_queue_.push_back(job);
    // Lazy, persistent pool (same idiom as the build pool): the caller
    // is always one worker, so the pool holds at most workers - 1
    // threads. Grown monotonically; joined by the destructor.
    while (batch_workers_.size() < workers - 1) {
      batch_workers_.emplace_back([this] { BatchWorkerLoop(); });
    }
  }
  batch_cv_.notify_all();
  DrainBatchJob(job.get());
  std::unique_lock<std::mutex> lock(batch_mu_);
  batch_done_cv_.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) == job->tasks.size();
  });
  batch_queue_.erase(
      std::find(batch_queue_.begin(), batch_queue_.end(), job));
}

size_t Engine::batch_pool_size() const {
  std::lock_guard<std::mutex> lock(batch_mu_);
  return batch_workers_.size();
}

std::vector<Result<ExecutionResult>> Engine::ExecuteBatch(
    const std::vector<std::string>& query_texts,
    const CallOptions& call) {
  std::vector<std::optional<Result<ExecutionResult>>> slots(
      query_texts.size());
  // The batch is one admission unit (its members share one traversal
  // budget and one reader hold; gating members individually could
  // deadlock a batch against its own siblings).
  Status admitted = AdmitQuery();
  if (!admitted.ok()) {
    queries_shed_.fetch_add(query_texts.size(), std::memory_order_relaxed);
    std::vector<Result<ExecutionResult>> rejected;
    rejected.reserve(query_texts.size());
    for (size_t i = 0; i < query_texts.size(); ++i) {
      rejected.push_back(admitted);
    }
    return rejected;
  }
  const std::chrono::steady_clock::time_point deadline =
      EffectiveDeadline(call);
  {
    std::shared_lock lock(mu_);
    // Phase 1 — plan every text (plan cache + parse). Failures settle
    // their slots here; everything else becomes work below.
    std::vector<std::optional<Plan>> plans(query_texts.size());
    for (size_t i = 0; i < query_texts.size(); ++i) {
      Result<Plan> plan = planner_.PlanFor(query_texts[i], base_, catalog_);
      if (plan.ok()) {
        plans[i].emplace(std::move(*plan));
      } else {
        slots[i].emplace(plan.status());
      }
    }
    // Phase 2 — group fusable plans by (view, shape). All plans were
    // computed under this reader hold, so they share one generation.
    const query::FusionOptions& fusion = options_.executor.fusion;
    std::vector<bool> in_group(query_texts.size(), false);
    std::vector<std::function<void()>> tasks;
    if (fusion.enabled) {
      std::unordered_map<std::string, std::vector<size_t>> shape_groups;
      for (size_t i = 0; i < plans.size(); ++i) {
        if (!plans[i].has_value() || plans[i]->shape_key.empty() ||
            plans[i]->match_ast == nullptr) {
          continue;
        }
        std::string key = plans[i]->view_name;
        key += '\x1f';
        key += plans[i]->shape_key;
        shape_groups[key].push_back(i);
      }
      const size_t min_group = std::max<size_t>(2, fusion.min_group_size);
      for (auto& [key, indices] : shape_groups) {
        if (indices.size() < min_group) continue;
        for (size_t i : indices) in_group[i] = true;
        tasks.push_back(
            [this, &plans, &slots, deadline, group = std::move(indices)] {
              RunFusedGroupLocked(plans, group, deadline, &slots);
            });
      }
    }
    // Phase 3 — everything not fused runs solo, one task per query.
    for (size_t i = 0; i < plans.size(); ++i) {
      if (slots[i].has_value() || in_group[i]) continue;
      tasks.push_back([this, &plans, &slots, deadline, i] {
        slots[i].emplace(ExecutePlannedLocked(*plans[i], deadline));
      });
    }
    RunBatchTasks(std::move(tasks));
  }
  ReleaseQuery();
  // Outside the reader lock (the advice round takes the writer lock).
  MaybeAutoAdvise();

  std::vector<Result<ExecutionResult>> results;
  results.reserve(slots.size());
  for (std::optional<Result<ExecutionResult>>& slot : slots) {
    if (!slot->ok() &&
        slot->status().code() == StatusCode::kDeadlineExceeded) {
      queries_timed_out_.fetch_add(1, std::memory_order_relaxed);
    }
    results.push_back(std::move(slot).value());
  }
  return results;
}

}  // namespace kaskade::core
