/// \file generators.h
/// \brief Deterministic synthetic generators for the four evaluation
/// graphs of Table III.
///
/// The paper's datasets are either proprietary (the Microsoft provenance
/// graph) or external downloads (dblp, soc-livejournal, roadnet-usa);
/// none are available offline, so we generate scaled-down graphs that
/// preserve the properties the experiments depend on (see DESIGN.md):
///
///  - `prov`: heterogeneous data-lineage graph. Jobs write files, files
///    are read by jobs (the bipartite core that makes only even-length
///    job-to-job paths feasible); tasks/machines/users add the schema
///    breadth that summarizers prune. Power-law fan-out.
///  - `dblp`: tripartite author/article/venue graph with author-article
///    edges in both directions (so author-to-author 2-hop connectors
///    exist) and power-law authorship counts.
///  - `soc-livejournal`: homogeneous directed social graph grown with
///    preferential attachment (power-law in/out degrees).
///  - `roadnet-usa`: homogeneous near-planar perturbed grid with bounded
///    degree (explicitly *not* power-law; Fig. 8's contrast case).
///
/// All generators are seeded and fully deterministic. Every edge carries
/// an integer `timestamp` property (used by Q4); jobs carry `CPU` and
/// `pipelineName` (used by Q1).

#ifndef KASKADE_DATASETS_GENERATORS_H_
#define KASKADE_DATASETS_GENERATORS_H_

#include <cstdint>

#include "graph/property_graph.h"

namespace kaskade::datasets {

/// \brief Scale/shape knobs for the provenance graph.
struct ProvOptions {
  size_t num_jobs = 2000;
  size_t num_files = 5000;
  size_t num_tasks = 4000;
  size_t num_machines = 50;
  size_t num_users = 100;
  /// Power-law exponent for fan-out sampling (smaller = heavier tail).
  double zipf_alpha = 2.2;
  /// Max files written / read per job (tail cap).
  int max_writes = 30;
  int max_reads = 30;
  /// Jobs read files produced within this many preceding jobs (lineage
  /// locality; creates the deep chains blast-radius queries traverse).
  size_t locality_window = 200;
  uint64_t seed = 42;
  /// Include the task/machine/user portion of the schema (what the
  /// schema-level summarizer prunes). Disable for pre-filtered graphs.
  bool include_auxiliary = true;
};

/// Builds the provenance graph. Vertex types: Job, File (+ Task, Machine,
/// User when `include_auxiliary`); edge types: WRITES_TO (Job->File),
/// IS_READ_BY (File->Job), SPAWNS (Job->Task), TRANSFERS_TO (Task->Task),
/// RUNS_ON (Task->Machine), SUBMITS (User->Job).
graph::PropertyGraph MakeProvenanceGraph(const ProvOptions& options = {});

/// \brief Scale knobs for the dblp-like publication graph.
struct DblpOptions {
  size_t num_authors = 3000;
  size_t num_articles = 6000;
  size_t num_venues = 40;
  double zipf_alpha = 2.0;
  int max_articles_per_author = 40;
  int max_authors_per_article = 6;
  uint64_t seed = 7;
  /// Include the venue portion of the schema.
  bool include_venues = true;
};

/// Builds the publication graph. Vertex types: Author, Article (+ Venue);
/// edge types: WROTE (Author->Article), WRITTEN_BY (Article->Author),
/// PUBLISHED_IN (Article->Venue).
graph::PropertyGraph MakeDblpGraph(const DblpOptions& options = {});

/// \brief Scale knobs for the social graph.
struct SocialOptions {
  size_t num_vertices = 10000;
  /// Typical out-degree; per-vertex fan-out is Zipf-distributed around it
  /// so *both* in- and out-degrees are heavy-tailed, as in
  /// soc-livejournal.
  size_t edges_per_vertex = 7;
  /// Power-law exponent of the fan-out distribution.
  double zipf_alpha = 1.9;
  /// Fan-out cap (0 = derived as 30x edges_per_vertex).
  int max_fanout = 0;
  /// Probability a new edge attaches preferentially (vs uniformly).
  double preferential_prob = 0.8;
  /// Probability the target follows back (soc-livejournal has high edge
  /// reciprocity, which correlates in- and out-degrees at hubs — the
  /// effect that makes uniform-edge path estimates collapse, §V-A).
  double reciprocal_prob = 0.5;
  uint64_t seed = 11;
};

/// Builds the homogeneous social graph (vertex type Person, edge type
/// FOLLOWS) via directed preferential attachment.
graph::PropertyGraph MakeSocialGraph(const SocialOptions& options = {});

/// \brief Scale knobs for the road network.
struct RoadOptions {
  size_t width = 100;
  size_t height = 100;
  /// Probability each grid edge exists (per direction).
  double keep_probability = 0.92;
  uint64_t seed = 5;
};

/// Builds the homogeneous road network (vertex type Intersection, edge
/// type ROAD) as a perturbed bidirectional grid.
graph::PropertyGraph MakeRoadGraph(const RoadOptions& options = {});

/// Subgraph induced by the first `num_edges` edges of `g` (the paper's
/// "first n edges of each graph" prefix for Fig. 5). Keeps only vertices
/// touched by those edges.
graph::PropertyGraph PrefixSubgraph(const graph::PropertyGraph& g,
                                    size_t num_edges);

/// Bounded-support Zipf-like sampler: returns a value in [1, max_value]
/// with P(v) proportional to v^-alpha. `u` is a uniform (0,1) draw.
int SampleZipf(double u, double alpha, int max_value);

}  // namespace kaskade::datasets

#endif  // KASKADE_DATASETS_GENERATORS_H_
