#include "datasets/workloads.h"

namespace kaskade::datasets {

std::string BlastRadiusQueryText() {
  return R"(SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 as A, q_j2 as B
  ) GROUP BY A, B
) GROUP BY A.pipelineName)";
}

std::string BlastRadiusRewrittenText() {
  return R"(SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:2_HOP_JOB_TO_JOB*1..5]->(q_j2:Job)
    RETURN q_j1 as A, q_j2 as B
  ) GROUP BY A, B
) GROUP BY A.pipelineName)";
}

std::string AncestorsQueryText(const std::string& vertex_type, int hops) {
  return "MATCH (x:" + vertex_type + ")-[r*1.." + std::to_string(hops) +
         "]->(j:" + vertex_type + ") RETURN j AS node, x AS ancestor";
}

std::string DescendantsQueryText(const std::string& vertex_type, int hops) {
  return "MATCH (j:" + vertex_type + ")-[r*1.." + std::to_string(hops) +
         "]->(x:" + vertex_type + ") RETURN j AS node, x AS descendant";
}

std::string CoauthorQueryText() {
  return "MATCH (a1:Author)-[:WROTE]->(p:Article) "
         "(p:Article)-[:WRITTEN_BY]->(a2:Author) RETURN a1, a2";
}

}  // namespace kaskade::datasets
