#include "datasets/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>
#include <unordered_map>

namespace kaskade::datasets {

using graph::GraphSchema;
using graph::PropertyGraph;
using graph::PropertyMap;
using graph::PropertyValue;
using graph::VertexId;

namespace {

/// Adds an edge that is known to satisfy the schema; asserts in debug
/// builds (generators construct only valid edges).
void MustAddEdge(PropertyGraph* g, VertexId src, VertexId dst,
                 const std::string& type, PropertyMap props = {}) {
  auto result = g->AddEdge(src, dst, type, std::move(props));
  assert(result.ok());
  (void)result;
}

PropertyMap TimestampProps(int64_t ts) {
  PropertyMap props;
  props.Set("timestamp", PropertyValue(ts));
  return props;
}

}  // namespace

int SampleZipf(double u, double alpha, int max_value) {
  if (max_value <= 1) return 1;
  // Inverse-CDF of the continuous Pareto with exponent alpha, clamped.
  double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
  int v = static_cast<int>(x);
  return std::clamp(v, 1, max_value);
}

PropertyGraph MakeProvenanceGraph(const ProvOptions& options) {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  if (options.include_auxiliary) {
    schema.AddVertexType("Task");
    schema.AddVertexType("Machine");
    schema.AddVertexType("User");
  }
  auto must = [](auto result) {
    assert(result.ok());
    (void)result;
  };
  must(schema.AddEdgeType("WRITES_TO", "Job", "File"));
  must(schema.AddEdgeType("IS_READ_BY", "File", "Job"));
  if (options.include_auxiliary) {
    must(schema.AddEdgeType("SPAWNS", "Job", "Task"));
    must(schema.AddEdgeType("TRANSFERS_TO", "Task", "Task"));
    must(schema.AddEdgeType("RUNS_ON", "Task", "Machine"));
    must(schema.AddEdgeType("SUBMITS", "User", "Job"));
  }

  PropertyGraph g(schema);
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  const int kNumPipelines = 20;
  std::vector<VertexId> jobs;
  jobs.reserve(options.num_jobs);
  for (size_t i = 0; i < options.num_jobs; ++i) {
    PropertyMap props;
    props.Set("name", PropertyValue("job_" + std::to_string(i)));
    props.Set("CPU", PropertyValue(1.0 + 99.0 * uniform(rng)));
    props.Set("pipelineName",
              PropertyValue("pipeline_" +
                            std::to_string(i % kNumPipelines)));
    jobs.push_back(g.AddVertexOfType(0, std::move(props)));
  }
  std::vector<VertexId> files;
  files.reserve(options.num_files);
  for (size_t i = 0; i < options.num_files; ++i) {
    PropertyMap props;
    props.Set("path", PropertyValue("/data/file_" + std::to_string(i)));
    props.Set("bytes",
              PropertyValue(static_cast<int64_t>(1024 + rng() % (1 << 22))));
    files.push_back(g.AddVertexOfType(1, std::move(props)));
  }

  // Lineage core. Jobs are created in submission order; each job writes a
  // power-law number of "its own" files and reads files written by jobs
  // in the preceding locality window, so deep producer-consumer chains
  // form (the structure blast-radius queries traverse).
  int64_t timestamp = 0;
  size_t files_per_job = std::max<size_t>(1, options.num_files / options.num_jobs);
  std::vector<std::vector<VertexId>> written_by_job(options.num_jobs);
  for (size_t j = 0; j < options.num_jobs; ++j) {
    int writes = SampleZipf(uniform(rng), options.zipf_alpha,
                            options.max_writes);
    for (int w = 0; w < writes; ++w) {
      // Mostly own files (dense block), occasionally any file.
      size_t file_index;
      if (uniform(rng) < 0.9) {
        file_index = std::min(options.num_files - 1,
                              j * files_per_job + static_cast<size_t>(w));
      } else {
        file_index = rng() % options.num_files;
      }
      MustAddEdge(&g, jobs[j], files[file_index], "WRITES_TO",
                  TimestampProps(++timestamp));
      written_by_job[j].push_back(files[file_index]);
    }
    if (j == 0) continue;
    int reads = SampleZipf(uniform(rng), options.zipf_alpha, options.max_reads);
    size_t window_start = j > options.locality_window
                              ? j - options.locality_window
                              : 0;
    for (int r = 0; r < reads; ++r) {
      size_t producer = window_start + rng() % (j - window_start);
      if (written_by_job[producer].empty()) continue;
      VertexId file =
          written_by_job[producer][rng() % written_by_job[producer].size()];
      // A job never reads a file it wrote itself (inputs are consumed
      // before outputs exist); without this, write/read round trips
      // (job -> file -> same job) would appear, which real provenance
      // graphs do not have.
      bool wrote_it = std::find(written_by_job[j].begin(),
                                written_by_job[j].end(),
                                file) != written_by_job[j].end();
      if (wrote_it) continue;
      MustAddEdge(&g, file, jobs[j], "IS_READ_BY",
                  TimestampProps(++timestamp));
    }
  }

  if (options.include_auxiliary) {
    std::vector<VertexId> machines;
    for (size_t i = 0; i < options.num_machines; ++i) {
      PropertyMap props;
      props.Set("hostname", PropertyValue("machine_" + std::to_string(i)));
      machines.push_back(g.AddVertexOfType(3, std::move(props)));
    }
    std::vector<VertexId> users;
    for (size_t i = 0; i < options.num_users; ++i) {
      PropertyMap props;
      props.Set("login", PropertyValue("user_" + std::to_string(i)));
      users.push_back(g.AddVertexOfType(4, std::move(props)));
    }
    VertexId prev_task = graph::kInvalidId;
    for (size_t i = 0; i < options.num_tasks; ++i) {
      PropertyMap props;
      props.Set("attempt", PropertyValue(static_cast<int64_t>(i % 3)));
      VertexId task = g.AddVertexOfType(2, std::move(props));
      VertexId job = jobs[rng() % jobs.size()];
      MustAddEdge(&g, job, task, "SPAWNS", TimestampProps(++timestamp));
      MustAddEdge(&g, task, machines[rng() % machines.size()], "RUNS_ON",
                  TimestampProps(++timestamp));
      if (prev_task != graph::kInvalidId && uniform(rng) < 0.5) {
        MustAddEdge(&g, prev_task, task, "TRANSFERS_TO",
                    TimestampProps(++timestamp));
      }
      prev_task = task;
    }
    for (size_t j = 0; j < options.num_jobs; ++j) {
      MustAddEdge(&g, users[rng() % users.size()], jobs[j], "SUBMITS",
                  TimestampProps(++timestamp));
    }
  }
  return g;
}

PropertyGraph MakeDblpGraph(const DblpOptions& options) {
  GraphSchema schema;
  schema.AddVertexType("Author");
  schema.AddVertexType("Article");
  if (options.include_venues) schema.AddVertexType("Venue");
  auto must = [](auto result) {
    assert(result.ok());
    (void)result;
  };
  must(schema.AddEdgeType("WROTE", "Author", "Article"));
  must(schema.AddEdgeType("WRITTEN_BY", "Article", "Author"));
  if (options.include_venues) {
    must(schema.AddEdgeType("PUBLISHED_IN", "Article", "Venue"));
  }

  PropertyGraph g(schema);
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  std::vector<VertexId> authors;
  for (size_t i = 0; i < options.num_authors; ++i) {
    PropertyMap props;
    props.Set("name", PropertyValue("author_" + std::to_string(i)));
    props.Set("hIndex", PropertyValue(static_cast<int64_t>(rng() % 60)));
    authors.push_back(g.AddVertexOfType(0, std::move(props)));
  }
  std::vector<VertexId> venues;
  if (options.include_venues) {
    for (size_t i = 0; i < options.num_venues; ++i) {
      PropertyMap props;
      props.Set("name", PropertyValue("venue_" + std::to_string(i)));
      venues.push_back(g.AddVertexOfType(2, std::move(props)));
    }
  }

  // Preferential authorship: prolific authors accumulate more articles.
  // `author_pool` holds one slot per authorship, so sampling from it is
  // degree-proportional.
  std::vector<VertexId> author_pool = authors;
  int64_t timestamp = 0;
  for (size_t a = 0; a < options.num_articles; ++a) {
    PropertyMap props;
    props.Set("title", PropertyValue("article_" + std::to_string(a)));
    props.Set("year",
              PropertyValue(static_cast<int64_t>(1990 + rng() % 30)));
    VertexId article = g.AddVertexOfType(1, std::move(props));
    int coauthors = SampleZipf(uniform(rng), options.zipf_alpha,
                               options.max_authors_per_article);
    std::vector<VertexId> chosen;
    for (int c = 0; c < coauthors; ++c) {
      VertexId author = uniform(rng) < 0.7
                            ? author_pool[rng() % author_pool.size()]
                            : authors[rng() % authors.size()];
      if (std::find(chosen.begin(), chosen.end(), author) != chosen.end()) {
        continue;
      }
      chosen.push_back(author);
      MustAddEdge(&g, author, article, "WROTE", TimestampProps(++timestamp));
      MustAddEdge(&g, article, author, "WRITTEN_BY",
                  TimestampProps(++timestamp));
      author_pool.push_back(author);
    }
    if (options.include_venues) {
      MustAddEdge(&g, article, venues[rng() % venues.size()], "PUBLISHED_IN",
                  TimestampProps(++timestamp));
    }
  }
  return g;
}

PropertyGraph MakeSocialGraph(const SocialOptions& options) {
  GraphSchema schema;
  schema.AddVertexType("Person");
  auto must = [](auto result) {
    assert(result.ok());
    (void)result;
  };
  must(schema.AddEdgeType("FOLLOWS", "Person", "Person"));

  PropertyGraph g(schema);
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  std::vector<VertexId> people;
  for (size_t i = 0; i < options.num_vertices; ++i) {
    PropertyMap props;
    props.Set("handle", PropertyValue("person_" + std::to_string(i)));
    people.push_back(g.AddVertexOfType(0, std::move(props)));
  }
  // Directed preferential attachment: targets are sampled from a pool
  // with one slot per incoming edge (plus one base slot per vertex), so
  // in-degrees follow a power law; fan-outs are Zipf so out-degrees do
  // too.
  std::vector<VertexId> target_pool = people;
  int64_t timestamp = 0;
  int max_fanout = options.max_fanout > 0
                       ? options.max_fanout
                       : static_cast<int>(30 * options.edges_per_vertex);
  for (size_t i = 1; i < options.num_vertices; ++i) {
    size_t fanout = static_cast<size_t>(options.edges_per_vertex) *
                    SampleZipf(uniform(rng), options.zipf_alpha, max_fanout) /
                    2;
    fanout = std::max<size_t>(fanout, 1);
    for (size_t e = 0; e < fanout; ++e) {
      VertexId target;
      if (uniform(rng) < options.preferential_prob) {
        target = target_pool[rng() % target_pool.size()];
      } else {
        target = people[rng() % i];
      }
      if (target == people[i]) continue;
      MustAddEdge(&g, people[i], target, "FOLLOWS",
                  TimestampProps(++timestamp));
      target_pool.push_back(target);
      if (uniform(rng) < options.reciprocal_prob) {
        MustAddEdge(&g, target, people[i], "FOLLOWS",
                    TimestampProps(++timestamp));
        target_pool.push_back(people[i]);
      }
    }
  }
  return g;
}

PropertyGraph MakeRoadGraph(const RoadOptions& options) {
  GraphSchema schema;
  schema.AddVertexType("Intersection");
  auto must = [](auto result) {
    assert(result.ok());
    (void)result;
  };
  must(schema.AddEdgeType("ROAD", "Intersection", "Intersection"));

  PropertyGraph g(schema);
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  auto at = [&](size_t x, size_t y) {
    return static_cast<VertexId>(y * options.width + x);
  };
  for (size_t y = 0; y < options.height; ++y) {
    for (size_t x = 0; x < options.width; ++x) {
      PropertyMap props;
      props.Set("x", PropertyValue(static_cast<int64_t>(x)));
      props.Set("y", PropertyValue(static_cast<int64_t>(y)));
      g.AddVertexOfType(0, std::move(props));
    }
  }
  int64_t timestamp = 0;
  for (size_t y = 0; y < options.height; ++y) {
    for (size_t x = 0; x < options.width; ++x) {
      if (x + 1 < options.width) {
        if (uniform(rng) < options.keep_probability) {
          MustAddEdge(&g, at(x, y), at(x + 1, y), "ROAD",
                      TimestampProps(++timestamp));
        }
        if (uniform(rng) < options.keep_probability) {
          MustAddEdge(&g, at(x + 1, y), at(x, y), "ROAD",
                      TimestampProps(++timestamp));
        }
      }
      if (y + 1 < options.height) {
        if (uniform(rng) < options.keep_probability) {
          MustAddEdge(&g, at(x, y), at(x, y + 1), "ROAD",
                      TimestampProps(++timestamp));
        }
        if (uniform(rng) < options.keep_probability) {
          MustAddEdge(&g, at(x, y + 1), at(x, y), "ROAD",
                      TimestampProps(++timestamp));
        }
      }
    }
  }
  return g;
}

PropertyGraph PrefixSubgraph(const PropertyGraph& g, size_t num_edges) {
  PropertyGraph out(g.schema());
  std::unordered_map<VertexId, VertexId> remap;
  auto map_vertex = [&](VertexId v) {
    auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    VertexId nv = out.AddVertexOfType(g.VertexType(v), g.VertexProperties(v));
    remap.emplace(v, nv);
    return nv;
  };
  size_t limit = std::min(num_edges, g.NumEdges());
  for (graph::EdgeId e = 0; e < limit; ++e) {
    const graph::EdgeRecord& rec = g.Edge(e);
    VertexId src = map_vertex(rec.source);
    VertexId dst = map_vertex(rec.target);
    auto result = out.AddEdgeOfType(src, dst, rec.type, g.EdgeProperties(e));
    assert(result.ok());
    (void)result;
  }
  return out;
}

}  // namespace kaskade::datasets
