/// \file workloads.h
/// \brief Canonical query texts for the Table IV workload.
///
/// Q1 is the paper's Listing 1 verbatim (modulo whitespace); the
/// rewritten form corresponds to Listing 4 — with exact hop bounds *1..5
/// rather than the listing's *1..4, see rewriter.h for the analysis.
/// Q2/Q3 are the ancestors/descendants traversals; Q4–Q8 are algorithmic
/// (path aggregates, counts, community detection) and are provided as
/// library calls by the benches.

#ifndef KASKADE_DATASETS_WORKLOADS_H_
#define KASKADE_DATASETS_WORKLOADS_H_

#include <string>

namespace kaskade::datasets {

/// Q1, Listing 1: job blast radius with CPU aggregation (prov).
std::string BlastRadiusQueryText();

/// Listing 4: Q1 rewritten over the 2-hop job-to-job connector (exact
/// bounds *1..5).
std::string BlastRadiusRewrittenText();

/// Q2: ancestors of every `vertex_type` vertex within `hops` hops.
std::string AncestorsQueryText(const std::string& vertex_type, int hops);

/// Q3: descendants of every `vertex_type` vertex within `hops` hops.
std::string DescendantsQueryText(const std::string& vertex_type, int hops);

/// dblp co-authorship pairs (author-article-author), the Fig. 6 dblp
/// workload.
std::string CoauthorQueryText();

}  // namespace kaskade::datasets

#endif  // KASKADE_DATASETS_WORKLOADS_H_
